//! Fault injection for the byte-source layer.
//!
//! [`FaultSource`] wraps any [`ByteSource`] and misbehaves after delivering a
//! configured number of bytes — either with a mid-stream I/O error or with a
//! premature end-of-input. Every failure mode of the index deserializer and
//! the loaders is pinned by tests built on this wrapper (plus plain
//! truncated [`crate::SliceSource`]s), so regressions in error propagation
//! surface as test failures instead of field panics.

use std::io;

use crate::source::ByteSource;

/// What happens once the fault point is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// Return `io::ErrorKind::Other` ("injected fault"), modelling a device
    /// or network error in the middle of a stream.
    Error,
    /// Return `io::ErrorKind::UnexpectedEof`, modelling a truncated file.
    Truncate,
}

/// A [`ByteSource`] that delivers at most `fail_after` bytes, then fails
/// every subsequent read according to its [`FaultMode`].
pub struct FaultSource<S> {
    inner: S,
    fail_after: u64,
    delivered: u64,
    mode: FaultMode,
}

impl<S: ByteSource> FaultSource<S> {
    /// Wrap `inner`, injecting the fault once a read would cross byte
    /// `fail_after` of the stream.
    pub fn new(inner: S, fail_after: u64, mode: FaultMode) -> Self {
        FaultSource {
            inner,
            fail_after,
            delivered: 0,
            mode,
        }
    }

    /// Bytes delivered before the fault so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    fn fault(&self) -> io::Error {
        match self.mode {
            FaultMode::Error => {
                io::Error::other(format!("injected I/O fault after byte {}", self.delivered))
            }
            FaultMode::Truncate => io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("injected truncation after byte {}", self.delivered),
            ),
        }
    }
}

impl<S: ByteSource> ByteSource for FaultSource<S> {
    fn take_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        if self.delivered + buf.len() as u64 > self.fail_after {
            return Err(self.fault());
        }
        self.inner.take_exact(buf)?;
        self.delivered += buf.len() as u64;
        Ok(())
    }

    // No `borrow_exact` override: forcing every read through `take_exact`
    // keeps the fault accounting exact.

    fn stream_position(&self) -> Option<u64> {
        Some(self.delivered)
    }

    fn remaining_hint(&self) -> Option<u64> {
        match self.mode {
            // Truncation shortens the stream, so it tightens the bound.
            FaultMode::Truncate => {
                let until_fault = self.fail_after.saturating_sub(self.delivered);
                Some(match self.inner.remaining_hint() {
                    Some(r) => r.min(until_fault),
                    None => until_fault,
                })
            }
            // A device error is not a length bound: the stream still holds
            // its full content, reads just fail. Capping the hint here would
            // make bounds checks misreport the fault as corruption.
            FaultMode::Error => self.inner.remaining_hint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SliceSource;

    #[test]
    fn delivers_until_fault_then_errors() {
        let data: Vec<u8> = (0..64u8).collect();
        let mut s = FaultSource::new(SliceSource::new(&data), 16, FaultMode::Error);
        let mut buf = [0u8; 8];
        s.take_exact(&mut buf).unwrap();
        s.take_exact(&mut buf).unwrap();
        let e = s.take_exact(&mut buf).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::Other);
        assert!(e.to_string().contains("after byte 16"), "{e}");
        assert_eq!(s.delivered(), 16);
    }

    #[test]
    fn truncation_reports_eof() {
        let data: Vec<u8> = vec![0; 32];
        let mut s = FaultSource::new(SliceSource::new(&data), 10, FaultMode::Truncate);
        let mut buf = [0u8; 8];
        s.take_exact(&mut buf).unwrap();
        let e = s.take_exact(&mut buf).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn remaining_hint_respects_fault_point() {
        let data: Vec<u8> = vec![0; 32];
        let s = FaultSource::new(SliceSource::new(&data), 10, FaultMode::Truncate);
        assert_eq!(s.remaining_hint(), Some(10));
        let s = FaultSource::new(SliceSource::new(&data), 100, FaultMode::Error);
        assert_eq!(s.remaining_hint(), Some(32));
    }

    #[test]
    fn length_prefixed_reads_fail_cleanly_through_fault() {
        let mut d = Vec::new();
        d.extend_from_slice(&4u64.to_le_bytes());
        d.extend_from_slice(&[1, 2, 3, 4]);
        let mut s = FaultSource::new(SliceSource::new(&d), 9, FaultMode::Error);
        assert!(s.take_bytes().is_err());
    }
}
