//! Throughput of the `mmm-serve` ingestion spine: the bounded MPMC queue
//! every tenant session sits behind, and the deficit-round-robin scheduler
//! that feeds the shared pipeline. Plain timing harness — no external
//! bench crates.
//!
//! Run `cargo bench -p bench --bench serve_queue`. Writes the
//! machine-readable baseline to `BENCH_serve_queue.json` (override the
//! path with `BENCH_JSON_OUT`; set it empty to skip). Set `BENCH_QUICK=1`
//! for a fast smoke run.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use bench::format_table;
use manymap::serve::{DrrConfig, DrrScheduler, ServeItem, TenantRegistry};
use mmm_pipeline::BoundedQueue;
use mmm_seq::SeqRecord;

/// Push `n` items through a queue with `producers`×`consumers` threads;
/// returns million items per second (push-to-drain, close-and-drain exit).
fn queue_mops(cap: usize, producers: usize, consumers: usize, n: usize) -> f64 {
    let q: BoundedQueue<usize> = BoundedQueue::new(cap);
    let q = &q;
    let start = Instant::now();
    std::thread::scope(|s| {
        let pushers: Vec<_> = (0..producers)
            .map(|p| {
                s.spawn(move || {
                    for i in (p..n).step_by(producers) {
                        let _ = q.push(i);
                    }
                })
            })
            .collect();
        let poppers: Vec<_> = (0..consumers)
            .map(|_| {
                s.spawn(move || {
                    let mut got = 0usize;
                    while q.pop().is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        for h in pushers {
            let _ = h.join();
        }
        q.close();
        let total: usize = poppers.into_iter().map(|h| h.join().unwrap_or(0)).sum();
        assert_eq!(total, n, "queue lost or duplicated items");
    });
    n as f64 / start.elapsed().as_secs_f64() / 1e6
}

/// Run the DRR scheduler over `tenants` backlogs of `reads_per` reads each
/// (mixed lengths), with a consumer thread draining the pipeline queue and
/// acking deliveries; returns million reads scheduled per second.
fn drr_mops(tenants: usize, reads_per: usize) -> f64 {
    let reg = TenantRegistry::new(tenants, reads_per, 256);
    let mut ts = Vec::new();
    for i in 0..tenants {
        let t = reg.admit(&format!("t{i}")).unwrap();
        for j in 0..reads_per {
            // Length mix: alternate short and long so DRR has work to do.
            let len = if j % 4 == 0 { 4_000 } else { 500 };
            let item = ServeItem {
                tenant: t.id,
                rec: SeqRecord::new(format!("r{j}"), vec![b'A'; len]),
                accepted_at: Instant::now(),
            };
            let _ = t.inq.push(item);
        }
        t.ended.store(true, Ordering::Release);
        ts.push(t);
    }
    let pipe: BoundedQueue<Vec<ServeItem>> = BoundedQueue::new(4);
    let pipe = &pipe;
    let reg = &reg;
    let ts: Vec<Arc<_>> = ts;
    let ts = &ts;
    let n = tenants * reads_per;

    let start = Instant::now();
    std::thread::scope(|s| {
        // The "pipeline": drain batches and ack each read as sent so the
        // scheduler's credit gate keeps granting.
        s.spawn(move || {
            let mut got = 0usize;
            while let Some(batch) = pipe.pop() {
                for item in batch {
                    ts[item.tenant].sent.fetch_add(1, Ordering::AcqRel);
                    got += 1;
                }
            }
            assert_eq!(got, n, "scheduler lost reads");
        });
        let mut sched = DrrScheduler::new(DrrConfig {
            quantum_bases: 100_000,
            batch_bases: 1_000_000,
        });
        sched.run(reg, pipe, || true);
    });
    n as f64 / start.elapsed().as_secs_f64() / 1e6
}

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok();
    let (queue_items, reads_per) = if quick {
        (100_000, 2_000)
    } else {
        (1_000_000, 20_000)
    };

    // (stage, items, mops) — one row per table line and JSON entry.
    let mut stages: Vec<(String, usize, f64)> = Vec::new();
    for (producers, consumers) in [(1usize, 1usize), (4, 4)] {
        let mops = queue_mops(512, producers, consumers, queue_items);
        stages.push((
            format!("queue {producers}p/{consumers}c"),
            queue_items,
            mops,
        ));
    }
    for tenants in [1usize, 4, 16] {
        let mops = drr_mops(tenants, reads_per);
        stages.push((
            format!("drr {tenants} tenant(s)"),
            tenants * reads_per,
            mops,
        ));
    }

    let rows: Vec<Vec<String>> = stages
        .iter()
        .map(|(stage, items, mops)| {
            vec![
                stage.clone(),
                format!("{items} items"),
                format!("{mops:.2} M/s"),
            ]
        })
        .collect();
    print!(
        "{}",
        format_table("serve/ingestion", &["stage", "work", "rate"], &rows)
    );

    let entries: Vec<String> = stages
        .iter()
        .map(|(stage, items, mops)| {
            format!(
                "    {{\n      \"stage\": \"{stage}\",\n      \"items\": {items},\n      \
                 \"mops\": {mops:.2}\n    }}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"serve_queue\",\n  \"quick\": {quick},\n  \
         \"stages\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    // `cargo bench` runs with the package dir as cwd; anchor the default
    // at the workspace root so the baseline lands next to the others.
    let out = std::env::var("BENCH_JSON_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve_queue.json").into()
    });
    if out.is_empty() {
        return;
    }
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}
