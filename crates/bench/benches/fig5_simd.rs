//! Micro-benchmark behind Figure 5: the two DP layouts across SIMD widths
//! on a 4 kbp pair, score-only and with-path. Plain timing harness
//! (median-of-N via [`bench::measure_gcups`]) — no external bench crates.
//!
//! Run `cargo bench -p bench --bench fig5_simd`.

use bench::{format_table, measure_gcups, noisy_pair, samples_for};
use mmm_align::{Engine, Scoring, Width};

fn main() {
    let len = 4_000usize;
    let (t, q) = noisy_pair(len, 11);
    let sc = Scoring::MAP_ONT;

    for with_path in [false, true] {
        let title = if with_path {
            "fig5/with_path"
        } else {
            "fig5/score_only"
        };
        let mut rows = Vec::new();
        for e in Engine::all() {
            if !e.is_available() || e.width == Width::Scalar {
                continue;
            }
            let gcups = measure_gcups(e, &t, &q, &sc, with_path, samples_for(len, with_path));
            rows.push(vec![e.label().to_string(), format!("{gcups:.3}")]);
        }
        print!("{}", format_table(title, &["kernel", "GCUPS"], &rows));
    }
}
