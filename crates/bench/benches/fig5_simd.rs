//! Criterion micro-benchmark behind Figure 5: the two DP layouts across
//! SIMD widths on a 4 kbp pair, score-only and with-path.
//!
//! Run `cargo bench -p bench --bench fig5_simd`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bench::noisy_pair;
use mmm_align::{AlignMode, Engine, Scoring, Width};

fn bench_kernels(c: &mut Criterion) {
    let (t, q) = noisy_pair(4_000, 11);
    let sc = Scoring::MAP_ONT;
    let cells = t.len() as u64 * q.len() as u64;

    for with_path in [false, true] {
        let mut group = c.benchmark_group(if with_path {
            "fig5/with_path"
        } else {
            "fig5/score_only"
        });
        group.throughput(Throughput::Elements(cells));
        group.sample_size(10);
        for e in Engine::all() {
            if !e.is_available() || e.width == Width::Scalar {
                continue;
            }
            group.bench_function(BenchmarkId::from_parameter(e.label()), |b| {
                b.iter(|| e.align(&t, &q, &sc, AlignMode::Global, with_path))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
