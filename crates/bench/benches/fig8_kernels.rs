//! Criterion micro-benchmark behind Figure 8's CPU series: kernel
//! throughput across the paper's sequence lengths (1 k – 16 k here; the
//! 32 k point is covered by the `fig8` binary to keep bench time bounded).
//!
//! Run `cargo bench -p bench --bench fig8_kernels`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bench::noisy_pair;
use mmm_align::{best_engine, best_mm2_engine, AlignMode, Scoring};

fn bench_lengths(c: &mut Criterion) {
    let sc = Scoring::MAP_ONT;
    let mut group = c.benchmark_group("fig8/cpu_score_only");
    group.sample_size(10);
    for &len in &[1_000usize, 4_000, 16_000] {
        let (t, q) = noisy_pair(len, len as u64);
        group.throughput(Throughput::Elements(t.len() as u64 * q.len() as u64));
        for (name, e) in [("minimap2", best_mm2_engine()), ("manymap", best_engine())] {
            group.bench_function(BenchmarkId::new(name, len), |b| {
                b.iter(|| e.align(&t, &q, &sc, AlignMode::Global, false))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lengths);
criterion_main!(benches);
