//! Micro-benchmark behind Figure 8's CPU series: kernel throughput across
//! the paper's sequence lengths (1 k – 16 k here; the 32 k point is
//! covered by the `fig8` binary to keep bench time bounded). Plain timing
//! harness (median-of-N via [`bench::measure_gcups`]) — no external bench
//! crates.
//!
//! Run `cargo bench -p bench --bench fig8_kernels`.

use bench::{format_table, measure_gcups, noisy_pair, samples_for};
use mmm_align::{best_engine, best_mm2_engine, Scoring};

fn main() {
    let sc = Scoring::MAP_ONT;
    let mut rows = Vec::new();
    for &len in &[1_000usize, 4_000, 16_000] {
        let (t, q) = noisy_pair(len, len as u64);
        for (name, e) in [("minimap2", best_mm2_engine()), ("manymap", best_engine())] {
            let gcups = measure_gcups(e, &t, &q, &sc, false, samples_for(len, false));
            rows.push(vec![
                name.to_string(),
                len.to_string(),
                format!("{gcups:.3}"),
            ]);
        }
    }
    print!(
        "{}",
        format_table("fig8/cpu_score_only", &["kernel", "len", "GCUPS"], &rows)
    );
}
