//! One module per table/figure of the paper (DESIGN.md §5 maps them).
//!
//! Every module exposes `run(quick: bool) -> String`: `quick` shrinks the
//! workload for smoke tests and CI; the binaries run the full version. The
//! `repro_all` binary concatenates all of them into a results report.

pub mod ablation;
pub mod backend_exec;
pub mod fig10_affinity;
pub mod fig11_breakdown;
pub mod fig5_simd;
pub mod fig6_memmode;
pub mod fig7_streams;
pub mod fig8_length;
pub mod fig9_scaling;
pub mod table2_profile;
pub mod table3_hw;
pub mod table4_datasets;
pub mod table5_aligners;

/// One experiment entry point: `quick` shrinks the workload.
pub type Experiment = fn(bool) -> String;

/// All experiments in paper order, with their ids.
pub fn all() -> Vec<(&'static str, Experiment)> {
    vec![
        ("Table 2", table2_profile::run as Experiment),
        ("Table 3", table3_hw::run),
        ("Table 4", table4_datasets::run),
        ("Figure 5", fig5_simd::run),
        ("Figure 6", fig6_memmode::run),
        ("Figure 7", fig7_streams::run),
        ("Figure 8", fig8_length::run),
        ("Figure 9", fig9_scaling::run),
        ("Figure 10", fig10_affinity::run),
        ("Figure 11", fig11_breakdown::run),
        ("Table 5", table5_aligners::run),
        ("Backend exec", backend_exec::run),
        ("Ablations", ablation::run),
    ]
}
