//! Figure 11 — end-to-end breakdown of minimap2 vs manymap on CPU and KNL
//! (§5.3.3), plus the manymap/GPU overall time.
//!
//! Per-read stage costs are metered on the host with each system's kernel
//! configuration (minimap2 = Eq. 3 / SSE, no mmap, 2-thread pipeline,
//! unsorted batches; manymap = Eq. 4 / widest SIMD, mmap, 3-thread
//! pipeline, sorted batches); the machine models project them to the
//! paper's 40-thread CPU and 256-thread KNL. The GPU bar replaces the
//! align component with the stream simulator's time. Paper shape: manymap
//! 1.4× (CPU) and 2.3× (KNL) overall; GPU only slightly ahead of CPU.

use manymap::baselines::BaselineId;
use manymap::Mapper;
use mmm_align::Scoring;
use mmm_gpu::{simulate_batch, DeviceSpec, KernelJob, StreamConfig};
use mmm_index::MinimizerIndex;
use mmm_knl::{simulate_pipeline, AffinityPolicy, PipelineParams, KNL_7210, XEON_GOLD_5115};

use super::fig9_scaling::{IN_COST_PER_BASE, OUT_COST_PER_READ};
use crate::{format_table, macrodata, meter::meter_batches};

pub fn run(quick: bool) -> String {
    let n_reads = if quick { 50 } else { 500 };
    let ds = macrodata::pacbio(1_000_000, n_reads);
    // The simulated dataset carries heavy I/O relative to its compute at
    // this scale; weight it like the paper's 9.4 GB read file.
    let io_scale = 10.0;

    let mut rows = Vec::new();
    let mut totals = std::collections::HashMap::new();
    for id in [BaselineId::Minimap2, BaselineId::Manymap] {
        let opts = id.map_opts();
        let index = match MinimizerIndex::build(&[ds.reference()], &opts.idx) {
            Ok(i) => i,
            Err(e) => return format!("fig11_breakdown: index build failed: {e}"),
        };
        let mapper = Mapper::new(&index, opts);
        let reads: Vec<Vec<u8>> = ds.reads.iter().map(|r| r.seq.clone()).collect();
        let batches = meter_batches(
            &mapper,
            &reads,
            64,
            IN_COST_PER_BASE * io_scale,
            OUT_COST_PER_READ * io_scale,
        );
        let manymap = id == BaselineId::Manymap;
        let params = PipelineParams {
            dedicated_io: manymap,
            mmap_input: manymap,
            sort_by_length: manymap,
            affinity: if manymap {
                AffinityPolicy::Optimized
            } else {
                AffinityPolicy::Scatter
            },
        };
        for (machine, threads) in [(&XEON_GOLD_5115, 40usize), (&KNL_7210, 256)] {
            let r = simulate_pipeline(machine, threads, &batches, &params);
            totals.insert((id.name(), machine.name), r.total);
            rows.push(vec![
                format!("{} / {}", id.name(), machine.name),
                format!("{:.3}", r.in_time),
                format!("{:.3}", r.compute_time),
                format!("{:.3}", r.out_time),
                format!("{:.3}", r.total),
            ]);
        }
    }

    // GPU bar: manymap with the align stage executed by the stream
    // simulator (seed/chain and I/O as on the CPU).
    let gpu_total = {
        let opts = BaselineId::Manymap.map_opts();
        let index = match MinimizerIndex::build(&[ds.reference()], &opts.idx) {
            Ok(i) => i,
            Err(e) => return format!("fig11_breakdown: index build failed: {e}"),
        };
        let mapper = Mapper::new(&index, opts);
        let reads: Vec<Vec<u8>> = ds.reads.iter().map(|r| r.seq.clone()).collect();
        let batches = meter_batches(
            &mapper,
            &reads,
            64,
            IN_COST_PER_BASE * io_scale,
            OUT_COST_PER_READ * io_scale,
        );
        // CPU pipeline with the align component removed...
        let mut no_align = batches.clone();
        for b in &mut no_align {
            for a in &mut b.align_cost {
                *a = 0.0;
            }
        }
        let params = PipelineParams::default();
        let rest = simulate_pipeline(&XEON_GOLD_5115, 40, &no_align, &params).total;
        // ...plus the simulated GPU time for the base-level work: one
        // representative inter-anchor fill per read (scaled sample in quick
        // mode).
        let take = if quick { 8 } else { 64 };
        let jobs: Vec<KernelJob> = ds
            .reads
            .iter()
            .take(take)
            .map(|r| {
                let seg = (r.seq.len() / 4).clamp(64, 4000);
                KernelJob {
                    target: r.seq[..seg.min(r.seq.len())].to_vec(),
                    query: r.seq[..seg.min(r.seq.len())].to_vec(),
                    with_path: true,
                }
            })
            .collect();
        let rep = simulate_batch(
            &jobs,
            &Scoring::MAP_PB,
            &StreamConfig::default(),
            &DeviceSpec::V100,
        );
        let per_read_gpu = rep.sim_seconds / take as f64;
        rest + per_read_gpu * ds.reads.len() as f64
    };
    rows.push(vec![
        "manymap / Tesla V100".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{gpu_total:.3}"),
    ]);

    let mut out = format_table(
        "Figure 11 — end-to-end breakdown (modeled from host-metered stage costs)",
        &[
            "system / platform",
            "input (s)",
            "compute (s)",
            "output (s)",
            "total (s)",
        ],
        &rows,
    );
    let sp = |m: &str| {
        totals
            .get(&("minimap2", m))
            .and_then(|a| totals.get(&("manymap", m)).map(|b| a / b))
    };
    if let (Some(c), Some(k)) = (sp("Xeon Gold 5115"), sp("Xeon Phi 7210")) {
        out.push_str(&format!(
            "manymap speedup: {:.2}x on CPU, {:.2}x on KNL (paper: 1.4x and 2.3x)\n",
            c, k
        ));
    }
    out
}
