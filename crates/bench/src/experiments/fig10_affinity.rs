//! Figure 10 — thread affinity strategies on KNL (§5.3.2).
//!
//! Same metered workloads as Figure 9; the simulator sweeps the thread
//! count under `compact`, `scatter` and `optimized`. Paper shape: compact
//! ≈2× slower while threads ≤ cores, converging at full occupancy;
//! optimized matches scatter below 64 threads and beats it by up to ~22%
//! at ≥150 threads on the I/O-heavier simulated dataset.

use manymap::{MapOpts, Mapper};
use mmm_index::MinimizerIndex;
use mmm_knl::{simulate_pipeline, AffinityPolicy, PipelineParams, KNL_7210};

use super::fig9_scaling::{IN_COST_PER_BASE, OUT_COST_PER_READ};
use crate::{format_table, macrodata, meter::meter_batches};

pub fn run(quick: bool) -> String {
    let n_reads = if quick { 60 } else { 600 };
    let mut out = String::new();

    for (ds, io_scale) in [
        (macrodata::pacbio(500_000, n_reads), 12.0), // 9.4 GB of reads: I/O matters
        (macrodata::nanopore(500_000, n_reads / 2), 3.0), // 2.7 GB: less I/O
    ] {
        let opts = if ds.platform == mmm_simreads::Platform::PacBio {
            MapOpts::map_pb()
        } else {
            MapOpts::map_ont()
        };
        let index = match MinimizerIndex::build(&[ds.reference()], &opts.idx) {
            Ok(i) => i,
            Err(e) => return format!("fig10_affinity: index build failed: {e}"),
        };
        let mapper = Mapper::new(&index, opts);
        let reads: Vec<Vec<u8>> = ds.reads.iter().map(|r| r.seq.clone()).collect();
        let batches = meter_batches(
            &mapper,
            &reads,
            64,
            IN_COST_PER_BASE * io_scale,
            OUT_COST_PER_READ * io_scale,
        );

        let thread_counts: &[usize] = if quick {
            &[32, 256]
        } else {
            &[16, 32, 64, 128, 150, 192, 256]
        };
        let mut rows = Vec::new();
        for &t in thread_counts {
            let mut cells = vec![t.to_string()];
            for policy in AffinityPolicy::ALL {
                let params = PipelineParams {
                    affinity: policy,
                    ..Default::default()
                };
                let r = simulate_pipeline(&KNL_7210, t, &batches, &params);
                cells.push(format!("{:.3}", r.total));
            }
            rows.push(cells);
        }
        out.push_str(&format_table(
            &format!(
                "Figure 10 — affinity strategies, {} (simulated seconds)",
                ds.label
            ),
            &["threads", "compact", "scatter", "optimized"],
            &rows,
        ));
    }
    out.push_str("paper: compact ~2x slower at <=64 threads; optimized up to 22% over scatter at >=150 threads\n");
    out
}
