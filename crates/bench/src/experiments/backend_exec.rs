//! Backend execution comparison — the unified `AlignBackend` seam run
//! end-to-end (DESIGN.md §9).
//!
//! One dataset, three executions of the same pipeline: inline host-engine
//! gap fills (the pre-backend path), the CPU SIMD backend, and the
//! simulated GPU/SIMT backend with its streams and memory pool. All three
//! must agree on every mapping (the backends are bit-identical); the table
//! reports what each one did — jobs, DP cells, fallbacks, pool traffic —
//! alongside the per-stage seconds.

use manymap::baselines::BaselineId;
use manymap::{profile_run, ProfileConfig};
use mmm_exec::BackendKind;
use mmm_index::{save_index, MinimizerIndex};
use mmm_io::Stage;
use mmm_seq::{nt4_decode, write_fasta, SeqRecord};

use crate::{format_table, macrodata};

pub fn run(quick: bool) -> String {
    let n_reads = if quick { 40 } else { 400 };
    let ds = macrodata::pacbio(800_000, n_reads);
    let opts = BaselineId::Manymap.map_opts();
    let index = MinimizerIndex::build(&[ds.reference()], &opts.idx);
    let idx_path = std::env::temp_dir().join(format!("bench-backend-{}.mmx", std::process::id()));
    if let Err(e) = save_index(&index, &idx_path) {
        return format!("backend_exec: index serialization failed: {e}");
    }

    let recs: Vec<SeqRecord> = ds
        .reads
        .iter()
        .map(|r| SeqRecord::new(r.name.clone(), nt4_decode(&r.seq)))
        .collect();
    let mut fasta = Vec::new();
    if let Err(e) = write_fasta(&mut fasta, &recs, 0) {
        return format!("backend_exec: in-memory fasta failed: {e}");
    }

    let variants: [(&str, Option<BackendKind>, bool); 4] = [
        ("inline", None, false),
        ("cpu", Some(BackendKind::Cpu), false),
        ("gpu-sim", Some(BackendKind::GpuSim), false),
        // The CLI's actual configuration: gpu-sim wrapped in the backend
        // supervisor (DESIGN.md §10). On a clean run the wrapper must add
        // only dispatch bookkeeping, so this row measures its overhead.
        ("gpu-sim+sup", Some(BackendKind::GpuSim), true),
    ];

    let mut rows = Vec::new();
    let mut mappings: Vec<usize> = Vec::new();
    for (label, backend, supervised) in variants {
        let cfg = ProfileConfig {
            opts,
            use_mmap: true,
            sort_by_length: true,
            backend,
            supervised,
        };
        let res = match profile_run(&idx_path, &fasta, &cfg) {
            Ok(res) => res,
            Err(e) => {
                let _ = std::fs::remove_file(&idx_path);
                return format!("backend_exec: {label} run failed: {e}");
            }
        };
        mappings.push(res.mappings);
        let bs = res.backend_stats.unwrap_or_default();
        rows.push(vec![
            label.to_string(),
            format!("{}", res.mappings),
            format!("{:.3}", res.timer.get(Stage::Align).as_secs_f64()),
            format!("{}", bs.jobs),
            format!("{:.2}", bs.cells as f64 / 1e9),
            format!("{}", bs.fallbacks),
            format!("{}", bs.max_stream_concurrency),
            format!("{:.1}", bs.bytes_pooled as f64 / 1e6),
        ]);
    }
    let _ = std::fs::remove_file(&idx_path);

    let mut out = format_table(
        &format!(
            "Backend execution — {} reads through the AlignBackend seam",
            n_reads
        ),
        &[
            "backend",
            "mappings",
            "align (s)",
            "jobs",
            "Gcells",
            "fallbacks",
            "peak kernels",
            "MB pooled",
        ],
        &rows,
    );
    let agree = mappings.windows(2).all(|w| w[0] == w[1]);
    out.push_str(&format!(
        "mapping agreement across backends: {}\n",
        if agree { "identical" } else { "MISMATCH" }
    ));
    out.push_str("paper: one pipeline, interchangeable processors (§4.5); backend choice changes accounting, never output\n");
    out.push_str(crate::SCALE_NOTE);
    out.push('\n');
    out
}
