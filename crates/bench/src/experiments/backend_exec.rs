//! Backend execution comparison — the unified `AlignBackend` seam run
//! end-to-end (DESIGN.md §9, §11).
//!
//! One dataset, seven executions of the same pipeline: inline host-engine
//! gap fills (the pre-backend path), the CPU SIMD backend, the simulated
//! GPU/SIMT backend (bare, supervised, and supervised + length-binned
//! scheduler), and a shrunken-device pair that forces the oversized-pair
//! fallback path with and without the scheduler routing those giants to
//! the host pre-batch. All variants must agree on every mapping (the
//! backends are bit-identical); the table reports what each one did —
//! jobs, DP cells, fallbacks, pool traffic — alongside the per-stage
//! seconds, and [`run_with_json`] additionally serializes the counters
//! plus the scheduled-vs-unscheduled jobs/sec and fallback-rate deltas
//! for the committed `BENCH_backend_exec.json` baseline.

use manymap::baselines::BaselineId;
use manymap::{profile_run, ProfileConfig};
use mmm_exec::{BackendKind, BackendStats};
use mmm_index::{save_index, MinimizerIndex};
use mmm_io::Stage;
use mmm_seq::{nt4_decode, write_fasta, SeqRecord};

use crate::{format_table, macrodata};

/// Simulated device memory for the shrunken-device rows: small enough that
/// real gap-fill jobs straddle the fit/fallback boundary (same constant as
/// the xtask oracle's tiny-device session).
const TINY_DEVICE_MEM: u64 = 16_384;

struct Variant {
    label: &'static str,
    backend: Option<BackendKind>,
    supervised: bool,
    sched: bool,
    device_mem: Option<u64>,
}

struct Row {
    label: &'static str,
    mappings: usize,
    align_seconds: f64,
    stats: BackendStats,
}

impl Row {
    fn jobs_per_sec(&self) -> f64 {
        if self.align_seconds > 0.0 {
            self.stats.jobs as f64 / self.align_seconds
        } else {
            0.0
        }
    }

    fn fallback_rate(&self) -> f64 {
        if self.stats.jobs > 0 {
            self.stats.fallbacks as f64 / self.stats.jobs as f64
        } else {
            0.0
        }
    }
}

pub fn run(quick: bool) -> String {
    run_with_json(quick).0
}

/// Run the comparison; returns the human table and the JSON document the
/// `backend_exec` binary writes to `BENCH_backend_exec.json`.
pub fn run_with_json(quick: bool) -> (String, String) {
    let n_reads = if quick { 40 } else { 400 };
    let ds = macrodata::pacbio(800_000, n_reads);
    let opts = BaselineId::Manymap.map_opts();
    let index = match MinimizerIndex::build(&[ds.reference()], &opts.idx) {
        Ok(i) => i,
        Err(e) => {
            let msg = format!("backend_exec: index build failed: {e}");
            return (msg.clone(), format!("{{\"error\": {msg:?}}}"));
        }
    };
    let idx_path = std::env::temp_dir().join(format!("bench-backend-{}.mmx", std::process::id()));
    if let Err(e) = save_index(&index, &idx_path) {
        let msg = format!("backend_exec: index serialization failed: {e}");
        return (msg.clone(), format!("{{\"error\": {msg:?}}}"));
    }

    let recs: Vec<SeqRecord> = ds
        .reads
        .iter()
        .map(|r| SeqRecord::new(r.name.clone(), nt4_decode(&r.seq)))
        .collect();
    let mut fasta = Vec::new();
    if let Err(e) = write_fasta(&mut fasta, &recs, 0) {
        let msg = format!("backend_exec: in-memory fasta failed: {e}");
        return (msg.clone(), format!("{{\"error\": {msg:?}}}"));
    }

    let variants: [Variant; 7] = [
        Variant {
            label: "inline",
            backend: None,
            supervised: false,
            sched: false,
            device_mem: None,
        },
        Variant {
            label: "cpu",
            backend: Some(BackendKind::Cpu),
            supervised: false,
            sched: false,
            device_mem: None,
        },
        Variant {
            label: "gpu-sim",
            backend: Some(BackendKind::GpuSim),
            supervised: false,
            sched: false,
            device_mem: None,
        },
        // The CLI's actual configuration: gpu-sim wrapped in the backend
        // supervisor (DESIGN.md §10). On a clean run the wrapper must add
        // only dispatch bookkeeping, so this row measures its overhead.
        Variant {
            label: "gpu-sim+sup",
            backend: Some(BackendKind::GpuSim),
            supervised: true,
            sched: false,
            device_mem: None,
        },
        Variant {
            label: "gpu-sim+sup+sched",
            backend: Some(BackendKind::GpuSim),
            supervised: true,
            sched: true,
            device_mem: None,
        },
        // Shrunken device: some gap fills no longer fit, so the in-submit
        // fallback path (unscheduled) vs. pre-batch host routing
        // (scheduled) becomes visible in the fallback-rate delta.
        Variant {
            label: "gpu-tiny+sup",
            backend: Some(BackendKind::GpuSim),
            supervised: true,
            sched: false,
            device_mem: Some(TINY_DEVICE_MEM),
        },
        Variant {
            label: "gpu-tiny+sup+sched",
            backend: Some(BackendKind::GpuSim),
            supervised: true,
            sched: true,
            device_mem: Some(TINY_DEVICE_MEM),
        },
    ];

    let mut rows: Vec<Row> = Vec::new();
    for v in &variants {
        let cfg = ProfileConfig {
            opts,
            use_mmap: true,
            sort_by_length: true,
            backend: v.backend,
            supervised: v.supervised,
            sched: v.sched,
            device_mem: v.device_mem,
        };
        let res = match profile_run(&idx_path, &fasta, &cfg) {
            Ok(res) => res,
            Err(e) => {
                let _ = std::fs::remove_file(&idx_path);
                let msg = format!("backend_exec: {} run failed: {e}", v.label);
                return (msg.clone(), format!("{{\"error\": {msg:?}}}"));
            }
        };
        rows.push(Row {
            label: v.label,
            mappings: res.mappings,
            align_seconds: res.timer.get(Stage::Align).as_secs_f64(),
            stats: res.backend_stats.unwrap_or_default(),
        });
    }
    let _ = std::fs::remove_file(&idx_path);

    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                format!("{}", r.mappings),
                format!("{:.3}", r.align_seconds),
                format!("{}", r.stats.jobs),
                format!("{:.0}", r.jobs_per_sec()),
                format!("{:.2}", r.stats.cells as f64 / 1e9),
                format!("{}", r.stats.fallbacks),
                format!("{}", r.stats.sched_batches),
                format!("{}", r.stats.sched_host_jobs),
                format!("{:.1}", r.stats.bytes_pooled as f64 / 1e6),
            ]
        })
        .collect();

    let mut out = format_table(
        &format!(
            "Backend execution — {} reads through the AlignBackend seam",
            n_reads
        ),
        &[
            "backend",
            "mappings",
            "align (s)",
            "jobs",
            "jobs/s",
            "Gcells",
            "fallbacks",
            "sched batches",
            "host-routed",
            "MB pooled",
        ],
        &table_rows,
    );
    let agree = rows.windows(2).all(|w| w[0].mappings == w[1].mappings);
    out.push_str(&format!(
        "mapping agreement across backends: {}\n",
        if agree { "identical" } else { "MISMATCH" }
    ));
    for (sched, fifo) in [
        ("gpu-sim+sup+sched", "gpu-sim+sup"),
        ("gpu-tiny+sup+sched", "gpu-tiny+sup"),
    ] {
        if let (Some(s), Some(f)) = (
            rows.iter().find(|r| r.label == sched),
            rows.iter().find(|r| r.label == fifo),
        ) {
            out.push_str(&format!(
                "{sched} vs {fifo}: jobs/s x{:.2}, fallback rate {:.3} -> {:.3}\n",
                if f.jobs_per_sec() > 0.0 {
                    s.jobs_per_sec() / f.jobs_per_sec()
                } else {
                    0.0
                },
                f.fallback_rate(),
                s.fallback_rate(),
            ));
        }
    }
    out.push_str("paper: one pipeline, interchangeable processors (§4.5); backend choice changes accounting, never output\n");
    out.push_str(crate::SCALE_NOTE);
    out.push('\n');

    (out, json_report(quick, n_reads, agree, &rows))
}

/// Hand-rolled JSON (the workspace takes no serialization dependency):
/// per-variant counters plus scheduled-vs-unscheduled deltas.
fn json_report(quick: bool, n_reads: usize, agree: bool, rows: &[Row]) -> String {
    let mut j = String::from("{\n");
    j.push_str("  \"experiment\": \"backend_exec\",\n");
    j.push_str(&format!("  \"quick\": {quick},\n"));
    j.push_str(&format!("  \"reads\": {n_reads},\n"));
    j.push_str(&format!("  \"mapping_agreement\": {agree},\n"));
    j.push_str("  \"variants\": [\n");
    for (i, r) in rows.iter().enumerate() {
        j.push_str("    {\n");
        j.push_str(&format!("      \"label\": \"{}\",\n", r.label));
        j.push_str(&format!("      \"mappings\": {},\n", r.mappings));
        j.push_str(&format!(
            "      \"align_seconds\": {:.6},\n",
            r.align_seconds
        ));
        j.push_str(&format!("      \"jobs\": {},\n", r.stats.jobs));
        j.push_str(&format!(
            "      \"jobs_per_sec\": {:.2},\n",
            r.jobs_per_sec()
        ));
        j.push_str(&format!("      \"cells\": {},\n", r.stats.cells));
        j.push_str(&format!("      \"fallbacks\": {},\n", r.stats.fallbacks));
        j.push_str(&format!(
            "      \"fallback_rate\": {:.6},\n",
            r.fallback_rate()
        ));
        j.push_str(&format!(
            "      \"sched_batches\": {},\n",
            r.stats.sched_batches
        ));
        j.push_str(&format!(
            "      \"sched_host_jobs\": {}\n",
            r.stats.sched_host_jobs
        ));
        j.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    j.push_str("  ],\n");
    j.push_str("  \"deltas\": [\n");
    let pairs = [
        ("gpu-sim+sup+sched", "gpu-sim+sup"),
        ("gpu-tiny+sup+sched", "gpu-tiny+sup"),
    ];
    for (i, (sched, fifo)) in pairs.iter().enumerate() {
        let (Some(s), Some(f)) = (
            rows.iter().find(|r| r.label == *sched),
            rows.iter().find(|r| r.label == *fifo),
        ) else {
            continue;
        };
        j.push_str("    {\n");
        j.push_str(&format!("      \"scheduled\": \"{sched}\",\n"));
        j.push_str(&format!("      \"unscheduled\": \"{fifo}\",\n"));
        j.push_str(&format!(
            "      \"jobs_per_sec_ratio\": {:.4},\n",
            if f.jobs_per_sec() > 0.0 {
                s.jobs_per_sec() / f.jobs_per_sec()
            } else {
                0.0
            }
        ));
        j.push_str(&format!(
            "      \"fallback_rate_delta\": {:.6}\n",
            s.fallback_rate() - f.fallback_rate()
        ));
        j.push_str(if i + 1 == pairs.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    j.push_str("  ]\n}\n");
    j
}
