//! Figure 8 — base-level alignment performance across sequence lengths on
//! the three processors (§5.2.4).
//!
//! CPU series are measured on the host; GPU series come from the stream
//! simulator at full launch width (128 streams × 512 threads); KNL series
//! from the calibrated micro model with MCDRAM and the flat-mode capacity
//! policy. Paper shape: manymap/CPU 3.3–4.5× over minimap2/CPU; GPU peaks
//! at 4 kbp and wins the mid-length range with path; KNL peaks at 8 kbp and
//! declines as per-thread state outgrows the caches; with-path GPU collapses
//! at 32 kbp (memory-capacity-limited concurrency).

use mmm_align::{best_engine, best_mm2_engine, Scoring};
use mmm_gpu::{simulate_batch, DeviceSpec, GpuKernelKind, KernelJob, StreamConfig};
use mmm_knl::memory::choose_mode;

use super::fig6_memmode::{knl_micro_gcups, working_set};
use crate::{format_table, measure_gcups, noisy_pair, samples_for, MICRO_LENGTHS};

pub fn run(quick: bool) -> String {
    let sc = Scoring::MAP_PB;
    let lengths: &[usize] = if quick {
        &[1_000, 4_000]
    } else {
        &MICRO_LENGTHS
    };
    let mut out = String::new();

    for with_path in [false, true] {
        let mut rows = Vec::new();
        for &len in lengths {
            let (t, q) = noisy_pair(len, len as u64 + 7);
            let samples = if quick {
                1
            } else {
                samples_for(len, with_path)
            };

            // CPU: measured.
            let cpu_mm2 = measure_gcups(best_mm2_engine(), &t, &q, &sc, with_path, samples);
            let cpu_many = measure_gcups(best_engine(), &t, &q, &sc, with_path, samples);

            // GPU: simulated, enough jobs to expose the concurrency limits.
            let n_jobs = if quick {
                16
            } else if with_path && len >= 16_000 {
                24 // memory-capacity-limited regime; keep host time bounded
            } else {
                160
            };
            let jobs: Vec<KernelJob> = (0..n_jobs)
                .map(|k| {
                    let (jt, jq) = noisy_pair(len, (len + k) as u64);
                    KernelJob {
                        target: jt,
                        query: jq,
                        with_path,
                    }
                })
                .collect();
            let gpu = |kind| {
                let cfg = StreamConfig {
                    kind,
                    ..Default::default()
                };
                simulate_batch(&jobs, &sc, &cfg, &DeviceSpec::V100).gcups()
            };
            let gpu_mm2 = gpu(GpuKernelKind::Mm2);
            let gpu_many = gpu(GpuKernelKind::Manymap);

            // KNL: micro model; flat-mode policy picks the memory type.
            let mode = choose_mode(working_set(len, with_path));
            let knl_mm2 = knl_micro_gcups(cpu_mm2 * 0.55, len, with_path, mode);
            let knl_many = knl_micro_gcups(cpu_many, len, with_path, mode);

            rows.push(vec![
                len.to_string(),
                format!("{cpu_mm2:.2}"),
                format!("{cpu_many:.2}"),
                format!("{gpu_mm2:.2}"),
                format!("{gpu_many:.2}"),
                format!("{knl_mm2:.2}"),
                format!("{knl_many:.2}"),
            ]);
        }
        out.push_str(&format_table(
            &format!(
                "Figure 8{} — GCUPS vs length ({})",
                if with_path { "b" } else { "a" },
                if with_path { "with path" } else { "score only" }
            ),
            &[
                "length",
                "CPU mm2",
                "CPU manymap",
                "GPU mm2*",
                "GPU manymap*",
                "KNL mm2*",
                "KNL manymap*",
            ],
            &rows,
        ));
    }
    out.push_str("* simulated platforms. paper: CPU 3.3-4.5x, GPU peak at 4 kbp (3.2x), KNL peak at 8 kbp (3.4x);\n  GPU with-path collapses at 32 kbp (only 8 kernels fit in 16 GB)\n");
    out
}
