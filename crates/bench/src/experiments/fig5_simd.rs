//! Figure 5 — "Comparison of SIMD instruction sets" (§5.2.1).
//!
//! Both DP layouts across SSE2/AVX2/AVX-512 on the CPU, score-only and
//! with-path, reported as GCUPS with the manymap/minimap2 speedup per
//! instruction set. Paper shape: manymap ≥ minimap2 everywhere, largest
//! gain on AVX2 (its cross-lane byte shift is the most expensive).

use mmm_align::{Engine, Layout, Scoring, Width};

use crate::{format_table, measure_gcups, noisy_pair, samples_for};

pub fn run(quick: bool) -> String {
    let len = 4_000;
    let (t, q) = noisy_pair(len, 11);
    let sc = Scoring::MAP_ONT;
    let mut out = String::new();

    for with_path in [false, true] {
        let mut rows = Vec::new();
        for width in [Width::Sse, Width::Avx2, Width::Avx512] {
            if !width.is_available() {
                rows.push(vec![
                    width.label().to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
            let samples = if quick {
                1
            } else {
                samples_for(len, with_path) * 2
            };
            let mm2 = measure_gcups(
                Engine::new(Layout::Mm2, width),
                &t,
                &q,
                &sc,
                with_path,
                samples,
            );
            let many = measure_gcups(
                Engine::new(Layout::Manymap, width),
                &t,
                &q,
                &sc,
                with_path,
                samples,
            );
            rows.push(vec![
                width.label().to_string(),
                format!("{mm2:.3}"),
                format!("{many:.3}"),
                format!("{:.2}x", many / mm2),
            ]);
        }
        out.push_str(&format_table(
            &format!(
                "Figure 5{} — SIMD instruction sets, {} bp pair ({})",
                if with_path { "b" } else { "a" },
                len,
                if with_path { "with path" } else { "score only" }
            ),
            &["ISA", "minimap2 GCUPS", "manymap GCUPS", "speedup"],
            &rows,
        ));
    }
    out.push_str("paper: manymap/minimap2 = ~1.1x (SSE2), 2.2x/1.6x (AVX2), 1.5x (AVX-512)\n");
    out
}
