//! Table 2 — performance breakdown of (original) minimap2, one thread,
//! CPU vs KNL (§4.1).
//!
//! The CPU column is *measured*: a single-threaded end-to-end run of the
//! minimap2 configuration (Eq. 3 SSE kernel, buffered index loading) over
//! the scaled PacBio dataset. The KNL column applies the calibrated
//! per-stage slowdowns of the machine model. Paper shape: Align dominates
//! (65% on CPU, 83% on KNL) and every stage is several times slower on one
//! KNL core.

use manymap::baselines::BaselineId;
use manymap::{profile_run, ProfileConfig};
use mmm_index::{save_index, MinimizerIndex};
use mmm_io::Stage;
use mmm_knl::KNL_7210;
use mmm_seq::{nt4_decode, write_fasta, SeqRecord};

use crate::{format_table, macrodata};

pub fn run(quick: bool) -> String {
    let n_reads = if quick { 50 } else { 800 };
    let ds = macrodata::pacbio(1_000_000, n_reads);
    let opts = BaselineId::Minimap2.map_opts();
    let index = match MinimizerIndex::build(&[ds.reference()], &opts.idx) {
        Ok(i) => i,
        Err(e) => return format!("table2_profile: index build failed: {e}"),
    };
    let idx_path = std::env::temp_dir().join(format!("bench-table2-{}.mmx", std::process::id()));
    if let Err(e) = save_index(&index, &idx_path) {
        return format!("table2_profile: index serialization failed: {e}");
    }

    let recs: Vec<SeqRecord> = ds
        .reads
        .iter()
        .map(|r| SeqRecord::new(r.name.clone(), nt4_decode(&r.seq)))
        .collect();
    let mut fasta = Vec::new();
    if let Err(e) = write_fasta(&mut fasta, &recs, 0) {
        return format!("table2_profile: in-memory fasta failed: {e}");
    }

    let cfg = ProfileConfig {
        opts,
        use_mmap: false,
        sort_by_length: false,
        backend: None,
        supervised: false,
        sched: false,
        device_mem: None,
    };
    let res = match profile_run(&idx_path, &fasta, &cfg) {
        Ok(res) => res,
        Err(e) => {
            let _ = std::fs::remove_file(&idx_path);
            return format!("table2_profile: profiled run failed: {e}");
        }
    };
    let _ = std::fs::remove_file(&idx_path);

    // KNL column: calibrated per-stage slowdowns (Table 2 ratios).
    let m = KNL_7210;
    let knl = |stage: Stage, secs: f64| -> f64 {
        match stage {
            Stage::LoadIndex => m.read_time(secs, false),
            Stage::LoadQuery => m.read_time(secs, false) * (8.3 / 6.1),
            Stage::SeedChain => m.seedchain_time(secs),
            Stage::Align => m.align_time(secs),
            Stage::Output => m.write_time(secs),
        }
    };

    let cpu_total = res.timer.total().as_secs_f64();
    let knl_times: Vec<(Stage, f64, f64)> = Stage::ALL
        .iter()
        .map(|&s| {
            let c = res.timer.get(s).as_secs_f64();
            (s, c, knl(s, c))
        })
        .collect();
    let knl_total: f64 = knl_times.iter().map(|r| r.2).sum();

    let rows: Vec<Vec<String>> = knl_times
        .iter()
        .map(|&(s, c, k)| {
            vec![
                s.label().to_string(),
                format!("{c:.3}"),
                format!("{:.2}", 100.0 * c / cpu_total),
                format!("{k:.3}"),
                format!("{:.2}", 100.0 * k / knl_total),
            ]
        })
        .collect();

    let mut out = format_table(
        &format!(
            "Table 2 — minimap2 single-thread breakdown, {} reads (CPU measured, KNL modeled)",
            res.reads
        ),
        &["stage", "CPU time (s)", "CPU %", "KNL time (s)", "KNL %"],
        &rows,
    );
    out.push_str(&format!(
        "totals: CPU {:.3}s, KNL {:.3}s ({:.1}x)\n",
        cpu_total,
        knl_total,
        knl_total / cpu_total
    ));
    out.push_str("paper: Align 65.42% of CPU / 82.69% of KNL; KNL ~15x slower overall\n");
    out.push_str(crate::SCALE_NOTE);
    out.push('\n');
    out
}
