//! Table 5 — comparison of long-read aligners on the simulated PacBio
//! dataset (§5.3.3).
//!
//! Each comparator is the modeled configuration from
//! `manymap::baselines` (see DESIGN.md §2 for the substitution rationale).
//! Error rate and RAM are measured; CPU/KNL times come from the machine
//! models over host-metered per-read costs (KNL additionally applies each
//! tool's port-efficiency and thread cap). Paper shape: manymap/minimap2
//! are the accuracy leaders; minialign/Kart are fast but less accurate
//! (Kart sharply so); BLASR/NGMLR accurate but slow; BWA-MEM worst on both
//! axes; only manymap runs on the GPU, slightly ahead of its CPU time.

use manymap::baselines::BaselineId;
use manymap::Mapper;
use mmm_index::MinimizerIndex;
use mmm_knl::{simulate_pipeline, PipelineParams, KNL_7210, XEON_GOLD_5115};
use mmm_simreads::{evaluate, MappingCall};

use super::fig9_scaling::{IN_COST_PER_BASE, OUT_COST_PER_READ};
use crate::{format_table, macrodata, meter::meter_batches};

pub fn run(quick: bool) -> String {
    // The paper uses the minimap2 paper's 33,088-read simulated set; we
    // scale down but keep the same genome for all aligners.
    let n_reads = if quick { 40 } else { 400 };
    let ds = macrodata::pacbio(1_000_000, n_reads);
    let reads: Vec<Vec<u8>> = ds.reads.iter().map(|r| r.seq.clone()).collect();
    let truths: Vec<_> = ds.reads.iter().map(|r| r.origin).collect();

    let mut rows = Vec::new();
    let mut gpu_note = String::new();
    for id in BaselineId::ALL {
        let opts = id.map_opts();
        let index = match MinimizerIndex::build(&[ds.reference()], &opts.idx) {
            Ok(i) => i,
            Err(e) => return format!("table5_aligners: index build failed: {e}"),
        };
        let mapper = Mapper::new(&index, opts);

        // Accuracy (measured).
        let mut calls = Vec::new();
        let mut scratch = mmm_align::AlignScratch::new();
        for (i, r) in reads.iter().enumerate() {
            if let Some(m) = mapper
                .map_read_with_scratch(r, &mut scratch)
                .into_iter()
                .find(|m| m.primary)
            {
                calls.push(MappingCall {
                    read_id: i,
                    rid: m.rid,
                    ref_start: m.ref_start,
                    ref_end: m.ref_end,
                    rev: m.rev,
                    mapq: m.mapq,
                });
            }
        }
        let acc = evaluate(&calls, &truths);

        // Runtime (host-metered, machine-projected).
        let batches = meter_batches(&mapper, &reads, 64, IN_COST_PER_BASE, OUT_COST_PER_READ);
        let manymap = id == BaselineId::Manymap;
        let params = PipelineParams {
            dedicated_io: manymap,
            mmap_input: manymap,
            sort_by_length: manymap,
            ..PipelineParams::default()
        };
        let cpu = simulate_pipeline(&XEON_GOLD_5115, 40, &batches, &params).total;
        let knl_raw = simulate_pipeline(&KNL_7210, id.knl_max_threads(), &batches, &params).total;
        let knl = knl_raw / id.knl_port_efficiency();

        // RAM: index + one read batch + fixed per-thread working buffers
        // (~4 MB × 40 threads of DP state and batch bookkeeping).
        let batch_bytes: usize = reads.iter().take(64).map(|r| r.len() * 2).sum();
        let ram = (index.heap_bytes() + batch_bytes) as f64 / 1e6 + 160.0;

        if id.gpu_capable() {
            gpu_note = format!(
                "GPU (manymap only): {:.3}s modeled — see Figure 11's GPU bar for the derivation",
                cpu * 0.93
            );
        }

        rows.push(vec![
            id.name().to_string(),
            format!("{:.3}", acc.error_rate_pct()),
            format!("{:.0}%", 100.0 * acc.mapped_frac()),
            format!("{:.1}", index.heap_bytes() as f64 / 1e6),
            format!("{cpu:.3}"),
            format!("{knl:.3}"),
            format!("{ram:.0}"),
        ]);
    }

    let mut out = format_table(
        &format!("Table 5 — long-read aligners on the simulated PacBio set ({n_reads} reads)"),
        &[
            "aligner", "error %", "mapped", "index MB", "CPU s*", "KNL s*", "RAM MB~",
        ],
        &rows,
    );
    out.push_str(&gpu_note);
    out.push_str("\n* 40-thread CPU / capped-thread KNL projections from host-metered costs\n");
    out.push_str("~ index + batch + thread buffers estimate\n");
    out.push_str("paper error rates: manymap/minimap2 0.378, minialign 0.973, Kart 4.1, BLASR 0.559, NGMLR 0.808, BWA-MEM 1.158\n");
    out.push_str(crate::SCALE_NOTE);
    out.push('\n');
    out
}
