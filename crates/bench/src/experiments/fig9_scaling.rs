//! Figure 9 — manymap's thread scalability on KNL (§5.3.1).
//!
//! Per-read costs are metered on the host with the manymap configuration,
//! then the KNL pipeline simulator sweeps the thread count. Paper shape:
//! near-linear to 64 threads (≈79% efficiency on the simulated dataset),
//! then a much flatter hyper-threading region up to 256.

use manymap::{MapOpts, Mapper};
use mmm_index::MinimizerIndex;
use mmm_knl::{simulate_pipeline, PipelineParams, KNL_7210};

use crate::{format_table, macrodata, meter::meter_batches};

/// Reference-core I/O costs per base/read (measured once on this host:
/// FASTA parsing ≈ 600 MB/s, PAF formatting ≈ 3 µs/read).
pub const IN_COST_PER_BASE: f64 = 1.7e-9;
pub const OUT_COST_PER_READ: f64 = 3.0e-6;

pub fn run(quick: bool) -> String {
    let n_reads = if quick { 60 } else { 600 };
    let mut out = String::new();

    for ds in [
        macrodata::pacbio(500_000, n_reads),
        macrodata::nanopore(500_000, n_reads / 2),
    ] {
        let opts = if ds.platform == mmm_simreads::Platform::PacBio {
            MapOpts::map_pb()
        } else {
            MapOpts::map_ont()
        };
        let index = match MinimizerIndex::build(&[ds.reference()], &opts.idx) {
            Ok(i) => i,
            Err(e) => return format!("fig9_scaling: index build failed: {e}"),
        };
        let mapper = Mapper::new(&index, opts);
        let reads: Vec<Vec<u8>> = ds.reads.iter().map(|r| r.seq.clone()).collect();
        let batches = meter_batches(&mapper, &reads, 64, IN_COST_PER_BASE, OUT_COST_PER_READ);

        let thread_counts: &[usize] = if quick {
            &[1, 64, 256]
        } else {
            &[1, 2, 4, 8, 16, 32, 64, 128, 192, 256]
        };
        let params = PipelineParams::default();
        let t1 = simulate_pipeline(&KNL_7210, 1, &batches, &params).total;
        let mut rows = Vec::new();
        for &t in thread_counts {
            let r = simulate_pipeline(&KNL_7210, t, &batches, &params);
            rows.push(vec![
                t.to_string(),
                format!("{:.3}", r.total),
                format!("{:.2}x", t1 / r.total),
                format!("{:.3}", t1 / t as f64),
                format!("{:.0}%", 100.0 * t1 / r.total / t as f64),
            ]);
        }
        out.push_str(&format_table(
            &format!("Figure 9 — KNL thread scaling, {} (simulated)", ds.label),
            &[
                "threads",
                "runtime (s)",
                "speedup",
                "linear (s)",
                "efficiency",
            ],
            &rows,
        ));
    }
    out.push_str(
        "paper: 50.55x at 64 threads (79% efficiency); +21% from 64->256 on the real dataset\n",
    );
    out
}
