//! Ablations for the design choices DESIGN.md §5 calls out.
//!
//! * A1 — memory layout alone (scalar vs scalar): Eq. 4's benefit without
//!   any SIMD;
//! * A2 — vector width sweep at fixed (manymap) layout;
//! * A3 — GPU: branch-free kernel vs divergent port, and the memory pool;
//! * A4 — KNL pipeline pieces: mmap, dedicated I/O thread, batch sorting.

use mmm_align::{Engine, Layout, Scoring, Width};
use mmm_gpu::{simulate_batch, DeviceSpec, GpuKernelKind, KernelJob, StreamConfig};
use mmm_knl::memory::effective_bandwidth;
use mmm_knl::{simulate_pipeline, MemoryMode, PipelineParams, WorkBatch, KNL_7210};

use crate::{format_table, measure_gcups, noisy_pair};

pub fn run(quick: bool) -> String {
    let sc = Scoring::MAP_ONT;
    let len = if quick { 1_000 } else { 4_000 };
    let (t, q) = noisy_pair(len, 3);
    let samples = if quick { 1 } else { 5 };
    let mut out = String::new();

    // A1: layout alone, no SIMD.
    let s_mm2 = measure_gcups(
        Engine::new(Layout::Mm2, Width::Scalar),
        &t,
        &q,
        &sc,
        false,
        samples,
    );
    let s_many = measure_gcups(
        Engine::new(Layout::Manymap, Width::Scalar),
        &t,
        &q,
        &sc,
        false,
        samples,
    );
    out.push_str(&format_table(
        "Ablation A1 — layout only (scalar kernels)",
        &["layout", "GCUPS"],
        &[
            vec!["Eq.3 (minimap2)".into(), format!("{s_mm2:.4}")],
            vec!["Eq.4 (manymap)".into(), format!("{s_many:.4}")],
        ],
    ));

    // A2: width sweep, fixed layout.
    let mut rows = Vec::new();
    for w in Width::ALL {
        if !w.is_available() {
            continue;
        }
        let g = measure_gcups(Engine::new(Layout::Manymap, w), &t, &q, &sc, false, samples);
        rows.push(vec![
            w.label().to_string(),
            w.lanes().to_string(),
            format!("{g:.3}"),
        ]);
    }
    out.push_str(&format_table(
        "Ablation A2 — vector width (manymap layout)",
        &["ISA", "lanes", "GCUPS"],
        &rows,
    ));

    // A3: GPU kernel structure and memory pool.
    let jobs: Vec<KernelJob> = (0..if quick { 16 } else { 96 })
        .map(|k| {
            let (jt, jq) = noisy_pair(len, 100 + k as u64);
            KernelJob {
                target: jt,
                query: jq,
                with_path: false,
            }
        })
        .collect();
    let gpu = |kind, use_pool| {
        let cfg = StreamConfig {
            kind,
            use_pool,
            ..Default::default()
        };
        simulate_batch(&jobs, &sc, &cfg, &DeviceSpec::V100).sim_seconds
    };
    let g_many = gpu(GpuKernelKind::Manymap, true);
    let g_mm2 = gpu(GpuKernelKind::Mm2, true);
    let g_nopool = gpu(GpuKernelKind::Manymap, false);
    out.push_str(&format_table(
        "Ablation A3 — GPU (simulated seconds)",
        &["variant", "time (s)", "vs manymap"],
        &[
            vec![
                "manymap kernel + pool".into(),
                format!("{g_many:.4}"),
                "1.00x".into(),
            ],
            vec![
                "divergent (minimap2) kernel".into(),
                format!("{g_mm2:.4}"),
                format!("{:.2}x", g_mm2 / g_many),
            ],
            vec![
                "manymap, no memory pool".into(),
                format!("{g_nopool:.4}"),
                format!("{:.2}x", g_nopool / g_many),
            ],
        ],
    ));

    // A4: KNL pipeline pieces over a synthetic I/O-heavy workload.
    let batch = WorkBatch {
        chain_cost: vec![0.002; 256],
        align_cost: {
            let mut v = vec![0.008; 256];
            v[255] = 0.4; // a straggler read
            v
        },
        in_cost: 2.0,
        out_cost: 0.5,
    };
    let batches = vec![batch.clone(), batch.clone(), batch.clone(), batch];
    let base = PipelineParams::default();
    let run_knl = |p: PipelineParams| simulate_pipeline(&KNL_7210, 256, &batches, &p).total;
    let full = run_knl(base);
    let variants = [
        ("full manymap pipeline", base),
        (
            "no mmap",
            PipelineParams {
                mmap_input: false,
                ..base
            },
        ),
        (
            "2-thread pipeline",
            PipelineParams {
                dedicated_io: false,
                ..base
            },
        ),
        (
            "no batch sorting",
            PipelineParams {
                sort_by_length: false,
                ..base
            },
        ),
    ];
    let rows: Vec<Vec<String>> = variants
        .iter()
        .map(|(name, p)| {
            let v = run_knl(*p);
            vec![
                name.to_string(),
                format!("{v:.3}"),
                format!("{:.2}x", v / full),
            ]
        })
        .collect();
    out.push_str(&format_table(
        "Ablation A4 — KNL pipeline pieces (simulated seconds, 256 threads)",
        &["variant", "time (s)", "slowdown"],
        &rows,
    ));

    // A5: the three KNL memory modes (§4.4.1) over growing working sets —
    // why manymap picks flat mode with a capacity check.
    let mut rows = Vec::new();
    for ws_gb in [1u64, 8, 14, 24, 64] {
        let ws = ws_gb << 30;
        rows.push(vec![
            format!("{ws_gb} GB"),
            format!("{:.0}", effective_bandwidth(ws, MemoryMode::Ddr)),
            format!("{:.0}", effective_bandwidth(ws, MemoryMode::Cache)),
            format!("{:.0}", effective_bandwidth(ws, MemoryMode::Mcdram)),
        ]);
    }
    out.push_str(&format_table(
        "Ablation A5 — KNL memory modes, effective bandwidth (GB/s)",
        &["working set", "DDR (flat)", "cache mode", "MCDRAM (flat)"],
        &rows,
    ));

    // A6: chaining design — minimap2's gap-cost DP vs classic LIS.
    {
        use mmm_chain::{chain_anchors, chain_lis, Anchor, ChainOpts};
        use mmm_index::MinimizerIndex;
        use mmm_seq::{nt4_decode, SeqRecord};
        use mmm_simreads::{generate_genome, simulate_reads, GenomeOpts, Platform, SimOpts};

        let g = generate_genome(&GenomeOpts {
            len: 200_000,
            repeat_frac: 0.25,
            repeat_unit: 2_000,
            seed: 77,
            ..Default::default()
        });
        let idx = match MinimizerIndex::build(
            &[SeqRecord::new("chr1", nt4_decode(&g))],
            &mmm_index::IdxOpts::MAP_ONT,
        ) {
            Ok(i) => i,
            Err(e) => {
                out.push_str(&format!("ablation A6: index build failed: {e}\n"));
                return out;
            }
        };
        let reads = simulate_reads(
            &g,
            &SimOpts {
                platform: Platform::Nanopore,
                num_reads: if quick { 10 } else { 60 },
                seed: 6,
            },
        );
        let mut dp_correct = 0usize;
        let mut lis_correct = 0usize;
        let mut counted = 0usize;
        for r in &reads {
            let anchors: Vec<Anchor> = idx.collect_anchors(&r.seq);
            if anchors.is_empty() {
                continue;
            }
            counted += 1;
            let within = |c: &mmm_chain::Chain| {
                let (rs, re) = c.ref_range();
                c.rev == r.origin.rev && re.min(r.origin.end) > rs.max(r.origin.start)
            };
            if chain_anchors(anchors.clone(), &ChainOpts::default())
                .first()
                .is_some_and(within)
            {
                dp_correct += 1;
            }
            if chain_lis(anchors, 3).first().is_some_and(within) {
                lis_correct += 1;
            }
        }
        out.push_str(&format_table(
            "Ablation A6 — chaining design on a 25%-repeat genome",
            &["method", "top chain on true locus"],
            &[
                vec![
                    "gap-cost DP (minimap2)".into(),
                    format!("{dp_correct}/{counted}"),
                ],
                vec![
                    "LIS (no gap model)".into(),
                    format!("{lis_correct}/{counted}"),
                ],
            ],
        ));
    }
    out
}
