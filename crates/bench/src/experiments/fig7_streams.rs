//! Figure 7 — performance of varied numbers of CUDA streams (§5.2.3).
//!
//! 4 kbp workload, streams 1 → 128, score-only and with-path. Paper shape:
//! linear speedup to 64 streams, only a slight further increase at 128
//! (the resident-grid/SM limits), overall speedups ~90× and ~77×.

use mmm_align::Scoring;
use mmm_gpu::stream::{execute_jobs, schedule_runs};
use mmm_gpu::{DeviceSpec, GpuKernelKind, KernelJob, StreamConfig};

use crate::{format_table, noisy_pair};

pub fn run(quick: bool) -> String {
    let len = if quick { 1_000 } else { 4_000 };
    let n_jobs = if quick { 64 } else { 256 };
    let sc = Scoring::MAP_PB;
    let jobs: Vec<KernelJob> = (0..n_jobs)
        .map(|k| {
            let (t, q) = noisy_pair(len, k as u64 + 1);
            KernelJob {
                target: t,
                query: q,
                with_path: false,
            }
        })
        .collect();
    let jobs_path: Vec<KernelJob> = jobs
        .iter()
        .map(|j| KernelJob {
            with_path: true,
            ..j.clone()
        })
        .collect();

    let stream_counts: &[usize] = if quick {
        &[1, 8, 64]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 128]
    };
    // Functional pass once; the sweep only re-schedules.
    let dev = DeviceSpec::V100;
    let runs_score = execute_jobs(&jobs, &sc, GpuKernelKind::Manymap, 512, &dev);
    let runs_path = execute_jobs(&jobs_path, &sc, GpuKernelKind::Manymap, 512, &dev);
    let mut rows = Vec::new();
    let mut base = (0.0, 0.0);
    for &s in stream_counts {
        let cfg = StreamConfig {
            streams: s,
            kind: GpuKernelKind::Manymap,
            ..Default::default()
        };
        let score = schedule_runs(&jobs, runs_score.clone(), &cfg, &dev);
        let path = schedule_runs(&jobs_path, runs_path.clone(), &cfg, &dev);
        if s == 1 {
            base = (score.sim_seconds, path.sim_seconds);
        }
        rows.push(vec![
            s.to_string(),
            format!("{:.2}", score.gcups()),
            format!("{:.1}x", base.0 / score.sim_seconds),
            format!("{:.2}", path.gcups()),
            format!("{:.1}x", base.1 / path.sim_seconds),
            score.max_concurrency.to_string(),
        ]);
    }
    let mut out = format_table(
        &format!("Figure 7 — CUDA streams, {n_jobs} pairs of {len} bp (simulated V100)"),
        &[
            "streams",
            "score GCUPS",
            "speedup",
            "path GCUPS",
            "speedup",
            "max conc",
        ],
        &rows,
    );
    out.push_str("paper: linear to 64 streams; 90x / 77.4x total at 128 streams\n");
    out
}
