//! Table 3 — hardware configurations: the platform constants every
//! simulator uses, printed next to the paper's values.

use mmm_gpu::DeviceSpec;
use mmm_knl::{KNL_7210, XEON_GOLD_5115};

use crate::format_table;

pub fn run(_quick: bool) -> String {
    let cpu = XEON_GOLD_5115;
    let gpu = DeviceSpec::V100;
    let knl = KNL_7210;
    let rows = vec![
        vec![
            "Model".into(),
            cpu.name.into(),
            gpu.name.into(),
            knl.name.into(),
        ],
        vec![
            "# Cores".into(),
            cpu.cores.to_string(),
            gpu.cores().to_string(),
            knl.cores.to_string(),
        ],
        vec![
            "HW threads".into(),
            cpu.max_threads().to_string(),
            "-".into(),
            knl.max_threads().to_string(),
        ],
        vec![
            "Base freq (MHz)".into(),
            cpu.base_mhz.to_string(),
            format!("{:.0}", gpu.clock_ghz * 1000.0),
            knl.base_mhz.to_string(),
        ],
        vec![
            "Device memory".into(),
            "-".into(),
            format!("{} GB HBM2", gpu.global_mem >> 30),
            "16 GB MCDRAM".into(),
        ],
        vec![
            "Execution".into(),
            "real (this host)".into(),
            "simulated".into(),
            "simulated".into(),
        ],
    ];
    format_table(
        "Table 3 — hardware configurations (model constants)",
        &["", "CPU", "GPU", "Xeon Phi"],
        &rows,
    )
}
