//! Figure 6 — DDR vs MCDRAM on KNL (§5.2.2).
//!
//! The KNL micro model: 256 threads each align one pair of the given
//! length. Per-thread throughput is the measured host kernel scaled by the
//! KNL frequency/architecture factor; the aggregate is then capped by the
//! memory system — `min(1, bandwidth / demand)` once the 256-thread working
//! set spills the 32 MiB aggregate L2.
//!
//! Paper shape: score-only — no difference below 16 kbp, up to ~5× with
//! MCDRAM beyond; with-path — ~1.8× while the footprint fits in 16 GB,
//! parity once it spills (8 kbp needs 18 GB).

use mmm_align::{best_engine, Scoring};
use mmm_knl::memory::{effective_bandwidth, KNL_L2_BYTES};
use mmm_knl::{MemoryMode, KNL_7210};

use crate::{format_table, measure_gcups, noisy_pair, samples_for, MICRO_LENGTHS};

/// KNL per-*core* SIMD throughput relative to one host core running the
/// same kernel: frequency ratio × narrower in-order pipeline. The vector
/// units are saturated by one or two threads, so hyper-threading does not
/// multiply kernel throughput (unlike the scalar-bound macro pipeline).
pub const KNL_SIMD_FACTOR: f64 = 0.15;

/// Streamed bytes per DP cell, score-only (six i8 state arrays + sequence
/// bytes touched per cell).
pub const BYTES_PER_CELL_SCORE: f64 = 10.0;
/// Streamed bytes per DP cell with path: state traffic plus the backtrack
/// matrix write. Calibrated so the in-capacity MCDRAM advantage lands near
/// Figure 6b's ≈1.8× (the backtracking pass is partially latency-bound,
/// which keeps the gap below the score-only 5×).
pub const BYTES_PER_CELL_PATH: f64 = 8.0;

/// 256-thread working set for one length.
pub fn working_set(len: usize, with_path: bool) -> u64 {
    let per_pair = if with_path {
        len as u64 * len as u64 // 1 byte per cell backtrack matrix
    } else {
        10 * len as u64
    };
    256 * per_pair
}

/// Aggregate simulated-KNL GCUPS for 256 threads at `len`.
pub fn knl_micro_gcups(host_gcups: f64, len: usize, with_path: bool, mode: MemoryMode) -> f64 {
    let compute = host_gcups * KNL_SIMD_FACTOR * KNL_7210.cores as f64;
    let ws = working_set(len, with_path);
    if ws <= KNL_L2_BYTES {
        return compute;
    }
    let demand = compute
        * if with_path {
            BYTES_PER_CELL_PATH
        } else {
            BYTES_PER_CELL_SCORE
        };
    let bw = effective_bandwidth(ws, mode);
    compute * (bw / demand).min(1.0)
}

pub fn run(quick: bool) -> String {
    let sc = Scoring::MAP_PB;
    let lengths: &[usize] = if quick {
        &[1_000, 16_000]
    } else {
        &MICRO_LENGTHS
    };
    let engine = best_engine();
    let mut out = String::new();

    for with_path in [false, true] {
        let mut rows = Vec::new();
        for &len in lengths {
            let (t, q) = noisy_pair(len, len as u64);
            let samples = if quick {
                1
            } else {
                samples_for(len, with_path)
            };
            let host = measure_gcups(engine, &t, &q, &sc, with_path, samples);
            let ddr = knl_micro_gcups(host, len, with_path, MemoryMode::Ddr);
            let mc = knl_micro_gcups(host, len, with_path, MemoryMode::Mcdram);
            let ws = working_set(len, with_path);
            rows.push(vec![
                len.to_string(),
                format!("{:.1} MB", ws as f64 / 1e6),
                format!("{ddr:.2}"),
                format!("{mc:.2}"),
                format!("{:.2}x", mc / ddr),
            ]);
        }
        out.push_str(&format_table(
            &format!(
                "Figure 6{} — KNL memory modes ({}), 256 threads (simulated)",
                if with_path { "b" } else { "a" },
                if with_path { "with path" } else { "score only" }
            ),
            &[
                "length",
                "working set",
                "DDR GCUPS",
                "MCDRAM GCUPS",
                "speedup",
            ],
            &rows,
        ));
    }
    out.push_str(
        "paper: 6a parity below 16 kbp then up to 5x; 6b ~1.8x until >16 GB then parity\n",
    );
    out
}
