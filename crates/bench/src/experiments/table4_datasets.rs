//! Table 4 — datasets for macro benchmarks, regenerated at reduced scale.
//!
//! The synthetic stand-ins must reproduce the paper's *shape*: the PacBio
//! set has longer mean reads with a bounded maximum; the Nanopore set has
//! shorter mean but an enormous maximum (ultra-long tail).

use mmm_seq::DatasetStats;

use crate::{format_table, macrodata};

pub fn run(quick: bool) -> String {
    let n = if quick { 300 } else { 3_000 };
    let pb = macrodata::pacbio(1_000_000, n);
    let ont = macrodata::nanopore(1_000_000, n / 2);

    let stat = |reads: &[mmm_simreads::SimulatedRead]| {
        DatasetStats::from_lengths_and_gc(reads.iter().map(|r| r.seq.len()), 0)
    };
    let s_pb = stat(&pb.reads);
    let s_ont = stat(&ont.reads);

    let rows = vec![
        vec!["Platform".into(), "PacBio SMRT".into(), "Nanopore".into()],
        vec![
            "Number of Reads".into(),
            s_pb.num_reads.to_string(),
            s_ont.num_reads.to_string(),
        ],
        vec![
            "Average Length (bp)".into(),
            format!("{:.1}", s_pb.mean_len),
            format!("{:.1}", s_ont.mean_len),
        ],
        vec![
            "Maximum Length (bp)".into(),
            s_pb.max_len.to_string(),
            s_ont.max_len.to_string(),
        ],
        vec![
            "Total Bases".into(),
            s_pb.total_bases.to_string(),
            s_ont.total_bases.to_string(),
        ],
        vec!["paper mean (bp)".into(), "5,567".into(), "3,957.8".into()],
        vec!["paper max (bp)".into(), "24,981".into(), "514,461".into()],
    ];
    let mut out = format_table(
        "Table 4 — datasets for macro benchmarks (scaled)",
        &["", "Simulated", "Real-like"],
        &rows,
    );
    out.push_str(crate::SCALE_NOTE);
    out.push('\n');
    out
}
