//! Shared support for the table/figure reproduction harnesses.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §5 for the index). This library holds the common pieces:
//! workload generation (the paper's 1 k–32 k bp micro-benchmark pairs and
//! the scaled macro datasets), median-of-N timing, per-read cost metering
//! for the machine-model simulators, and table printing.

use std::time::Instant;

use mmm_align::{AlignMode, AlignScratch, Engine, Scoring};

/// The paper's micro-benchmark lengths (§5.1.2: "6 workloads of lengths
/// from 1 thousand to 32 thousand bp").
pub const MICRO_LENGTHS: [usize; 6] = [1_000, 2_000, 4_000, 8_000, 16_000, 32_000];

/// Scale factor notes printed by every macro harness: the paper maps
/// ~0.9 M reads against hg38 (3.1 Gbp); we run the same pipeline on a
/// synthetic Mbp-scale genome and thousands of reads.
pub const SCALE_NOTE: &str = "(scaled workload: synthetic Mbp genome; shapes, not absolute \
     seconds, are the reproduction target — see EXPERIMENTS.md)";

/// Deterministic noisy pair: a random target and a query derived from it
/// with ~12% edits — the profile of the paper's dumped PacBio alignment
/// workloads.
pub fn noisy_pair(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let t: Vec<u8> = (0..len).map(|_| (rnd() % 4) as u8).collect();
    let mut q = t.clone();
    for _ in 0..len / 8 {
        let p = rnd() % q.len();
        match rnd() % 3 {
            0 => q[p] = (rnd() % 4) as u8,
            1 => q.insert(p, (rnd() % 4) as u8),
            _ => {
                q.remove(p);
            }
        }
    }
    q.truncate(len);
    (t, q)
}

/// Median-of-`samples` GCUPS of `engine` on one pair.
pub fn measure_gcups(
    engine: Engine,
    t: &[u8],
    q: &[u8],
    sc: &Scoring,
    with_path: bool,
    samples: usize,
) -> f64 {
    let cells = t.len() as f64 * q.len() as f64;
    // One arena reused across samples: after the first call the kernel
    // runs allocation-free, so the median measures compute, not malloc.
    let mut scratch = AlignScratch::new();
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(engine.align_with_scratch(
                t,
                q,
                sc,
                AlignMode::Global,
                with_path,
                &mut scratch,
            ));
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    cells / times[times.len() / 2] / 1e9
}

/// Samples per point, scaled down for big problems so harnesses stay fast.
pub fn samples_for(len: usize, with_path: bool) -> usize {
    let base = match len {
        0..=2_000 => 7,
        2_001..=8_000 => 5,
        _ => 3,
    };
    if with_path {
        (base / 2).max(1)
    } else {
        base
    }
}

/// Render one figure/table as aligned columns.
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = format!("\n=== {title} ===\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

pub mod experiments;

/// Macro-dataset bundle shared by the Table 2/5 and Figure 9/10/11 bins.
pub mod macrodata {
    use mmm_seq::{nt4_decode, SeqRecord};
    use mmm_simreads::{
        generate_genome, simulate_reads, GenomeOpts, Platform, SimOpts, SimulatedRead,
    };

    /// Scaled stand-ins for Table 4's two datasets.
    pub struct MacroDataset {
        pub label: &'static str,
        pub platform: Platform,
        pub genome: Vec<u8>,
        pub reads: Vec<SimulatedRead>,
    }

    /// The simulated-PacBio dataset (scaled).
    pub fn pacbio(genome_len: usize, num_reads: usize) -> MacroDataset {
        let genome = generate_genome(&GenomeOpts {
            len: genome_len,
            seed: 42,
            ..Default::default()
        });
        let reads = simulate_reads(
            &genome,
            &SimOpts {
                platform: Platform::PacBio,
                num_reads,
                seed: 7,
            },
        );
        MacroDataset {
            label: "Simulated (PacBio)",
            platform: Platform::PacBio,
            genome,
            reads,
        }
    }

    /// The real-Nanopore-like dataset (scaled).
    pub fn nanopore(genome_len: usize, num_reads: usize) -> MacroDataset {
        let genome = generate_genome(&GenomeOpts {
            len: genome_len,
            seed: 43,
            ..Default::default()
        });
        let reads = simulate_reads(
            &genome,
            &SimOpts {
                platform: Platform::Nanopore,
                num_reads,
                seed: 8,
            },
        );
        MacroDataset {
            label: "Real (Nanopore)",
            platform: Platform::Nanopore,
            genome,
            reads,
        }
    }

    impl MacroDataset {
        /// The genome as a reference record.
        pub fn reference(&self) -> SeqRecord {
            SeqRecord::new("chr1", nt4_decode(&self.genome))
        }
    }
}

/// Meter per-read reference-core costs for the machine-model simulators.
pub mod meter {
    use std::time::Instant;

    use manymap::Mapper;
    use mmm_knl::WorkBatch;

    /// Measure per-read seed+chain and align costs (single-thread, host
    /// core) and package them as simulator batches of `batch_size` reads.
    pub fn meter_batches(
        mapper: &Mapper<'_>,
        reads: &[Vec<u8>],
        batch_size: usize,
        in_cost_per_base: f64,
        out_cost_per_read: f64,
    ) -> Vec<WorkBatch> {
        let mut batches = Vec::new();
        let mut scratch = mmm_align::AlignScratch::new();
        for chunk in reads.chunks(batch_size.max(1)) {
            let mut chain = Vec::with_capacity(chunk.len());
            let mut align = Vec::with_capacity(chunk.len());
            let mut bases = 0usize;
            for read in chunk {
                bases += read.len();
                let t0 = Instant::now();
                let chained = mapper.seed_chain(read);
                chain.push(t0.elapsed().as_secs_f64());
                let t1 = Instant::now();
                std::hint::black_box(mapper.extend_with_scratch(read, &chained, &mut scratch));
                align.push(t1.elapsed().as_secs_f64());
            }
            batches.push(WorkBatch {
                chain_cost: chain,
                align_cost: align,
                in_cost: bases as f64 * in_cost_per_base,
                out_cost: chunk.len() as f64 * out_cost_per_read,
            });
        }
        batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noisy_pair_is_deterministic_and_sized() {
        let (t1, q1) = noisy_pair(1000, 5);
        let (t2, q2) = noisy_pair(1000, 5);
        assert_eq!(t1, t2);
        assert_eq!(q1, q2);
        assert_eq!(t1.len(), 1000);
        assert!(q1.len() <= 1000);
        let (t3, _) = noisy_pair(1000, 6);
        assert_ne!(t1, t3);
    }

    #[test]
    fn micro_lengths_match_paper() {
        assert_eq!(MICRO_LENGTHS[0], 1_000);
        assert_eq!(MICRO_LENGTHS[5], 32_000);
    }

    #[test]
    fn measure_gcups_positive() {
        use mmm_align::{Layout, Width};
        let (t, q) = noisy_pair(300, 1);
        let g = measure_gcups(
            Engine::new(Layout::Manymap, Width::Scalar),
            &t,
            &q,
            &Scoring::MAP_ONT,
            false,
            3,
        );
        assert!(g > 0.0);
    }
}
