//! Runs every table/figure harness and writes the combined report to
//! `repro_results.txt` in the workspace root (input for EXPERIMENTS.md).
//! Set BENCH_QUICK=1 for a fast smoke run.

use std::io::Write;

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok();
    let mut report = String::new();
    report.push_str("# manymap-rs — reproduction report\n");
    report.push_str(&format!("mode: {}\n", if quick { "quick" } else { "full" }));
    for (name, f) in bench::experiments::all() {
        eprintln!("[repro] running {name} ...");
        let start = std::time::Instant::now();
        let section = f(quick);
        report.push_str(&section);
        eprintln!(
            "[repro] {name} done in {:.1}s",
            start.elapsed().as_secs_f64()
        );
    }
    print!("{report}");
    if let Ok(mut f) = std::fs::File::create("repro_results.txt") {
        let _ = f.write_all(report.as_bytes());
        eprintln!("[repro] wrote repro_results.txt");
    }
}
