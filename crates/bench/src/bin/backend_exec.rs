//! Regenerates the backend execution comparison (see DESIGN.md §9, §11)
//! and writes the machine-readable baseline to `BENCH_backend_exec.json`
//! (override the path with `BENCH_JSON_OUT`; set it empty to skip).
//! Set BENCH_QUICK=1 for a fast smoke run.

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok();
    let (table, json) = bench::experiments::backend_exec::run_with_json(quick);
    print!("{table}");
    let out = std::env::var("BENCH_JSON_OUT").unwrap_or_else(|_| "BENCH_backend_exec.json".into());
    if out.is_empty() {
        return;
    }
    match std::fs::write(&out, &json) {
        Ok(()) => eprintln!("[backend_exec] wrote {out}"),
        Err(e) => eprintln!("[backend_exec] could not write {out}: {e}"),
    }
}
