//! Regenerates the backend execution comparison (see DESIGN.md §9).
//! Set BENCH_QUICK=1 for a fast smoke run.

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok();
    print!("{}", bench::experiments::backend_exec::run(quick));
}
