//! Regenerates the paper's table4 (see DESIGN.md §5).
//! Set BENCH_QUICK=1 for a fast smoke run.

fn main() {
    let quick = std::env::var("BENCH_QUICK").is_ok();
    print!("{}", bench::experiments::table4_datasets::run(quick));
}
