//! LIS-based chaining — the classic `O(n log n)` alternative.
//!
//! Before gap-cost chaining (minimap/minimap2), overlappers found colinear
//! anchor sets as a *longest increasing subsequence* over query positions
//! of reference-sorted anchors (e.g. MHAP/BLASR's clustering stage). It is
//! faster than the DP but blind to gap geometry: any colinear anchor can
//! join the chain no matter how far away. The crate keeps it as an
//! ablation partner for [`crate::chain::chain_anchors`] — the design-choice
//! comparison DESIGN.md calls out — and for tests that need an exact
//! colinearity oracle.

use crate::anchor::{sort_anchors, Anchor};
use crate::chain::Chain;

/// Longest (strictly) increasing subsequence over `qpos` of each
/// (rid, strand) group of anchors; ties in `rpos` cannot both be used, so
/// the LIS is over pairs with strictly increasing `rpos` *and* `qpos`.
/// Returns one chain per group, best first, scored `span × length` (the
/// anchor-bases heuristic), keeping chains of at least `min_cnt` anchors.
pub fn chain_lis(mut anchors: Vec<Anchor>, min_cnt: usize) -> Vec<Chain> {
    if anchors.is_empty() {
        return Vec::new();
    }
    sort_anchors(&mut anchors);
    let mut chains = Vec::new();
    let mut start = 0;
    for i in 1..=anchors.len() {
        let boundary = i == anchors.len()
            || anchors[i].rid != anchors[start].rid
            || anchors[i].rev != anchors[start].rev;
        if boundary {
            if let Some(c) = lis_one_group(&anchors[start..i], min_cnt) {
                chains.push(c);
            }
            start = i;
        }
    }
    chains.sort_by_key(|c| -c.score);
    chains
}

/// Patience-sorting LIS with parent links over one sorted group.
fn lis_one_group(group: &[Anchor], min_cnt: usize) -> Option<Chain> {
    // group is sorted by (rpos, qpos); the LIS constraint is strictly
    // increasing qpos with strictly increasing rpos. Equal rpos entries are
    // adjacent; process them together so they cannot chain to each other.
    let n = group.len();
    let mut tails: Vec<usize> = Vec::new(); // indices of smallest tail per length
    let mut parent = vec![usize::MAX; n];

    let mut i = 0;
    while i < n {
        // Anchors sharing one rpos must be inserted against the same tails
        // snapshot (none of them may extend another).
        let mut j = i;
        while j < n && group[j].rpos == group[i].rpos {
            j += 1;
        }
        let snapshot = tails.clone();
        for k in i..j {
            let q = group[k].qpos;
            // Binary search over the snapshot for the longest chain whose
            // tail qpos < q.
            let pos = snapshot.partition_point(|&t| group[t].qpos < q);
            if pos > 0 {
                parent[k] = snapshot[pos - 1];
            }
            if pos == tails.len() {
                tails.push(k);
            } else if group[tails[pos]].qpos > q {
                tails[pos] = k;
            }
        }
        i = j;
    }

    if tails.len() < min_cnt.max(1) {
        return None;
    }
    let mut idxs = Vec::with_capacity(tails.len());
    // Non-empty: the min_cnt guard above rejected empty chains.
    let mut cur = *tails.last()?;
    loop {
        idxs.push(cur);
        if parent[cur] == usize::MAX {
            break;
        }
        cur = parent[cur];
    }
    idxs.reverse();
    let score = idxs.len() as i32 * group[idxs[0]].span as i32;
    Some(Chain {
        anchors: idxs.iter().map(|&k| group[k]).collect(),
        score,
        rid: group[0].rid,
        rev: group[0].rev,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{chain_anchors, ChainOpts};

    fn mk(rpos: u32, qpos: u32) -> Anchor {
        Anchor {
            rid: 0,
            rpos,
            qpos,
            rev: false,
            span: 15,
        }
    }

    #[test]
    fn picks_the_longest_colinear_subset() {
        // Diagonal run of 5 with 2 off-diagonal decoys.
        let mut a: Vec<Anchor> = (0..5).map(|k| mk(1000 + 100 * k, 10 + 100 * k)).collect();
        a.push(mk(1050, 5000));
        a.push(mk(1250, 2));
        let chains = chain_lis(a, 2);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].anchors.len(), 5);
        for w in chains[0].anchors.windows(2) {
            assert!(w[0].rpos < w[1].rpos && w[0].qpos < w[1].qpos);
        }
    }

    #[test]
    fn equal_rpos_anchors_cannot_chain_together() {
        let a = vec![mk(100, 10), mk(100, 20), mk(100, 30)];
        let chains = chain_lis(a, 1);
        assert_eq!(chains[0].anchors.len(), 1);
    }

    #[test]
    fn groups_by_strand() {
        let mut a: Vec<Anchor> = (0..3).map(|k| mk(100 * (k + 1), 50 * (k + 1))).collect();
        a.extend((0..4).map(|k| Anchor {
            rid: 0,
            rpos: 100 * (k + 1),
            qpos: 50 * (k + 1),
            rev: true,
            span: 15,
        }));
        let chains = chain_lis(a, 1);
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0].anchors.len(), 4); // best first
        assert!(chains[0].rev);
    }

    #[test]
    fn agrees_with_dp_on_clean_diagonals() {
        let a: Vec<Anchor> = (0..10).map(|k| mk(1000 + 100 * k, 10 + 100 * k)).collect();
        let lis = chain_lis(a.clone(), 3);
        let dp = chain_anchors(a, &ChainOpts::default());
        assert_eq!(lis[0].anchors, dp[0].anchors);
    }

    #[test]
    fn ignores_gap_geometry_unlike_dp() {
        // Two clusters separated by 200 kb: the DP (max_dist) breaks the
        // chain; LIS happily joins them — its known weakness.
        let mut a: Vec<Anchor> = (0..4).map(|k| mk(1000 + 100 * k, 10 + 100 * k)).collect();
        a.extend((0..4).map(|k| mk(201_000 + 100 * k, 20_010 + 100 * k)));
        let lis = chain_lis(a.clone(), 1);
        assert_eq!(lis[0].anchors.len(), 8);
        let opts = ChainOpts {
            min_score: 10,
            ..Default::default()
        };
        let dp = chain_anchors(a, &opts);
        assert!(dp.iter().all(|c| c.anchors.len() <= 4));
    }

    #[test]
    fn empty_and_min_cnt() {
        assert!(chain_lis(Vec::new(), 1).is_empty());
        let a = vec![mk(1, 1), mk(2, 2)];
        assert!(chain_lis(a.clone(), 3).is_empty());
        assert_eq!(chain_lis(a, 2).len(), 1);
    }
}
