//! Anchors: minimizer matches between query and reference.

/// One seed match. Positions are the *end* coordinates of the k-mer match,
/// matching minimap2's anchor convention `(x = rid/rpos, y = qpos)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Anchor {
    /// Reference sequence id.
    pub rid: u32,
    /// Position of the last base of the match on the reference.
    pub rpos: u32,
    /// Position of the last base of the match on the query (on the strand
    /// given by `rev`).
    pub qpos: u32,
    /// True when the minimizer matched the reverse-complemented query.
    pub rev: bool,
    /// Match span in bases (the k-mer length).
    pub span: u8,
}

impl Anchor {
    /// Sort key grouping anchors by (rid, strand) and ordering by reference
    /// then query position — the order the chaining DP requires.
    pub fn sort_key(&self) -> (u32, bool, u32, u32) {
        (self.rid, self.rev, self.rpos, self.qpos)
    }
}

/// Sort anchors into chaining order.
pub fn sort_anchors(anchors: &mut [Anchor]) {
    anchors.sort_unstable_by_key(|a| a.sort_key());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorting_groups_by_rid_and_strand() {
        let mut v = vec![
            Anchor {
                rid: 1,
                rpos: 5,
                qpos: 1,
                rev: false,
                span: 15,
            },
            Anchor {
                rid: 0,
                rpos: 9,
                qpos: 2,
                rev: true,
                span: 15,
            },
            Anchor {
                rid: 0,
                rpos: 3,
                qpos: 3,
                rev: false,
                span: 15,
            },
            Anchor {
                rid: 0,
                rpos: 7,
                qpos: 1,
                rev: false,
                span: 15,
            },
        ];
        sort_anchors(&mut v);
        assert_eq!(v[0].rpos, 3);
        assert_eq!(v[1].rpos, 7);
        assert!(v[2].rev);
        assert_eq!(v[3].rid, 1);
    }
}
