//! Primary/secondary chain selection and mapping quality.
//!
//! Chains whose reference intervals overlap a better chain by more than
//! `mask_level` are *secondary* to it; the rest are *primary*. MAPQ follows
//! the minimap2 paper's estimate
//! `mapq = 40 · (1 − f2/f1) · min(1, m/10) · log f1` clamped to [0, 60],
//! where `f1`, `f2` are the best and second-best chain scores sharing the
//! primary's interval and `m` is the anchor count.

use crate::chain::Chain;

/// Selection parameters.
#[derive(Clone, Copy, Debug)]
pub struct SelectOpts {
    /// Overlap fraction above which a chain is secondary (`--mask-level`).
    pub mask_level: f32,
    /// Keep at most this many secondary chains per primary (`-N`).
    pub best_n: usize,
}

impl Default for SelectOpts {
    fn default() -> Self {
        SelectOpts {
            mask_level: 0.5,
            best_n: 5,
        }
    }
}

/// A selected chain with its primary flag and MAPQ.
#[derive(Clone, Debug)]
pub struct SelectedChain {
    pub chain: Chain,
    pub primary: bool,
    pub mapq: u8,
}

fn overlap_frac(a: &Chain, b: &Chain) -> f32 {
    if a.rid != b.rid {
        return 0.0;
    }
    let (as_, ae) = a.ref_range();
    let (bs, be) = b.ref_range();
    let inter = ae.min(be).saturating_sub(as_.max(bs)) as f32;
    let shorter = (ae - as_).min(be - bs).max(1) as f32;
    inter / shorter
}

/// Split chains into primaries and their secondaries; compute MAPQ for the
/// primaries. Input must be sorted by descending score (as
/// [`crate::chain::chain_anchors`] returns).
pub fn select_chains(chains: Vec<Chain>, opts: &SelectOpts) -> Vec<SelectedChain> {
    let mut out: Vec<SelectedChain> = Vec::with_capacity(chains.len());
    // second-best score overlapping each primary (for MAPQ)
    let mut sub_score: Vec<i32> = Vec::new();
    let mut n_secondary: Vec<usize> = Vec::new();

    'next: for c in chains {
        for (k, p) in out.iter().enumerate().filter(|(_, p)| p.primary) {
            if overlap_frac(&c, &p.chain) > opts.mask_level {
                if sub_score[k] == 0 {
                    sub_score[k] = c.score;
                }
                if n_secondary[k] < opts.best_n {
                    n_secondary[k] += 1;
                    out.push(SelectedChain {
                        chain: c,
                        primary: false,
                        mapq: 0,
                    });
                }
                continue 'next;
            }
        }
        out.push(SelectedChain {
            chain: c,
            primary: true,
            mapq: 0,
        });
        sub_score.push(0);
        n_secondary.push(0);
        // `sub_score`/`n_secondary` are indexed by *output* position of
        // primaries; keep them aligned.
        while sub_score.len() < out.len() {
            sub_score.push(0);
            n_secondary.push(0);
        }
    }

    for (k, sel) in out.iter_mut().enumerate() {
        if sel.primary {
            sel.mapq = mapq(
                sel.chain.score,
                sub_score.get(k).copied().unwrap_or(0),
                sel.chain.anchors.len(),
            );
        }
    }
    out
}

/// minimap2's MAPQ estimate. The `log f1` factor is normalized by `log 100`
/// so a unique chain of score 100 lands at MAPQ 40 and the [0, 60] clamp
/// only engages for very strong chains.
pub fn mapq(f1: i32, f2: i32, anchor_count: usize) -> u8 {
    if f1 <= 0 {
        return 0;
    }
    let ratio = 1.0 - f2.max(0) as f64 / f1 as f64;
    let m_term = (anchor_count as f64 / 10.0).min(1.0);
    let q = 40.0 * ratio * m_term * (f1 as f64).ln() / 100f64.ln();
    q.clamp(0.0, 60.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchor::Anchor;

    fn chain_at(rid: u32, start: u32, len: u32, score: i32) -> Chain {
        let anchors = vec![
            Anchor {
                rid,
                rpos: start + 14,
                qpos: 14,
                rev: false,
                span: 15,
            },
            Anchor {
                rid,
                rpos: start + len - 1,
                qpos: len - 1,
                rev: false,
                span: 15,
            },
        ];
        Chain {
            anchors,
            score,
            rid,
            rev: false,
        }
    }

    #[test]
    fn non_overlapping_chains_are_both_primary() {
        let chains = vec![chain_at(0, 1000, 500, 100), chain_at(0, 10_000, 500, 80)];
        let sel = select_chains(chains, &SelectOpts::default());
        assert!(sel.iter().all(|s| s.primary));
    }

    #[test]
    fn overlapping_worse_chain_is_secondary() {
        let chains = vec![chain_at(0, 1000, 500, 100), chain_at(0, 1100, 500, 60)];
        let sel = select_chains(chains, &SelectOpts::default());
        assert!(sel[0].primary);
        assert!(!sel[1].primary);
    }

    #[test]
    fn unique_hit_gets_high_mapq() {
        // A unique, well-anchored chain: 12 anchors, score 300.
        let anchors: Vec<Anchor> = (0..12)
            .map(|k| Anchor {
                rid: 0,
                rpos: 1000 + 100 * k,
                qpos: 14 + 100 * k,
                rev: false,
                span: 15,
            })
            .collect();
        let chain = Chain {
            anchors,
            score: 300,
            rid: 0,
            rev: false,
        };
        let sel = select_chains(vec![chain], &SelectOpts::default());
        assert!(sel[0].mapq >= 40, "mapq={}", sel[0].mapq);
    }

    #[test]
    fn ambiguous_hit_gets_low_mapq() {
        // Two near-equal overlapping chains: the primary's mapq collapses.
        let chains = vec![chain_at(0, 1000, 500, 100), chain_at(0, 1010, 500, 98)];
        let sel = select_chains(chains, &SelectOpts::default());
        assert!(sel[0].mapq <= 5, "mapq={}", sel[0].mapq);
    }

    #[test]
    fn different_rid_never_masks() {
        let chains = vec![chain_at(0, 1000, 500, 100), chain_at(1, 1000, 500, 60)];
        let sel = select_chains(chains, &SelectOpts::default());
        assert!(sel.iter().all(|s| s.primary));
    }

    #[test]
    fn best_n_caps_secondaries() {
        let mut chains = vec![chain_at(0, 1000, 500, 100)];
        for k in 0..10 {
            chains.push(chain_at(0, 1005 + k, 500, 50 - k as i32));
        }
        let opts = SelectOpts {
            mask_level: 0.5,
            best_n: 3,
        };
        let sel = select_chains(chains, &opts);
        assert_eq!(sel.iter().filter(|s| !s.primary).count(), 3);
    }

    #[test]
    fn mapq_monotone_in_ratio() {
        assert!(mapq(100, 0, 20) > mapq(100, 50, 20));
        assert!(mapq(100, 50, 20) > mapq(100, 99, 20));
        assert_eq!(mapq(0, 0, 20), 0);
    }
}
