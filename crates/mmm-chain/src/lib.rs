//! `mmm-chain` — anchor chaining, the second stage of seed–chain–extend.
//!
//! Given the minimizer hits (*anchors*) between a query and the reference,
//! chaining finds colinear subsets that form approximate alignments
//! (minimap2 §"chaining", reproduced here with the same score function,
//! the `h`-predecessor window and max-skip heuristics), then selects
//! primary/secondary chains by reference-interval overlap and assigns
//! mapping quality.

pub mod anchor;
pub mod chain;
pub mod lis;
pub mod select;

pub use anchor::{sort_anchors, Anchor};
pub use chain::{chain_anchors, Chain, ChainOpts};
pub use lis::chain_lis;
pub use select::{select_chains, SelectOpts, SelectedChain};
