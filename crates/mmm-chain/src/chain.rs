//! The chaining dynamic program.
//!
//! minimap2's chaining score between anchors `j → i` (same rid/strand,
//! `rpos_j < rpos_i`):
//!
//! ```text
//! f(i) = max( f(j) + min(min(dq, dr), span_i) − γ(|dq − dr|) , span_i )
//! γ(g)  = 0.01·span·g + 0.5·log2(g)      (γ(0) = 0)
//! ```
//!
//! with `dq = qpos_i − qpos_j`, `dr = rpos_i − rpos_j`. Predecessors are
//! scanned over a bounded window (`max_iter`) and the scan aborts early
//! after `max_skip` consecutive non-improving candidates — the two
//! heuristics that make minimap2's chaining near-linear in practice.

use crate::anchor::{sort_anchors, Anchor};

/// Chaining parameters (minimap2 defaults for long reads).
#[derive(Clone, Copy, Debug)]
pub struct ChainOpts {
    /// Maximum gap between adjacent anchors (`-g`, 5000 for map-pb/ont).
    pub max_dist: u32,
    /// Bandwidth: maximum |dq - dr| allowed (`-r`, 500).
    pub bandwidth: u32,
    /// Predecessor window (`--max-chain-iter`, 5000; scaled down here).
    pub max_iter: usize,
    /// Early-exit after this many non-improving predecessors (25).
    pub max_skip: usize,
    /// Minimum chain score (`-m`, 40).
    pub min_score: i32,
    /// Minimum number of anchors per chain (`-n`, 3).
    pub min_cnt: usize,
}

impl Default for ChainOpts {
    fn default() -> Self {
        ChainOpts {
            max_dist: 5000,
            bandwidth: 500,
            max_iter: 5000,
            max_skip: 25,
            min_score: 40,
            min_cnt: 3,
        }
    }
}

/// One chain: a colinear run of anchors with its DP score.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chain {
    /// Indices are implicit; the anchors themselves are stored in chain
    /// order (ascending reference position).
    pub anchors: Vec<Anchor>,
    /// Chaining DP score.
    pub score: i32,
    /// Reference sequence id.
    pub rid: u32,
    /// Strand.
    pub rev: bool,
}

impl Chain {
    /// Reference interval covered (start of first k-mer .. end of last).
    pub fn ref_range(&self) -> (u32, u32) {
        let first = &self.anchors[0];
        let last = &self.anchors[self.anchors.len() - 1];
        (first.rpos + 1 - first.span as u32, last.rpos + 1)
    }

    /// Query interval covered, in the strand-local coordinates of the
    /// anchors.
    pub fn query_range(&self) -> (u32, u32) {
        let first = &self.anchors[0];
        let last = &self.anchors[self.anchors.len() - 1];
        (first.qpos + 1 - first.span as u32, last.qpos + 1)
    }
}

/// Gap cost γ: 0.01·span·|g| + 0.5·log2(|g|), as in the minimap2 paper.
#[inline]
fn gap_cost(gap: u32, span: u8) -> i32 {
    if gap == 0 {
        return 0;
    }
    let g = gap as f32;
    (0.01 * span as f32 * g + 0.5 * g.log2()) as i32
}

/// Run the chaining DP and return all chains passing the score/count
/// filters, best score first. Anchors are sorted internally.
///
/// ```
/// use mmm_chain::{chain_anchors, Anchor, ChainOpts};
/// let anchors: Vec<Anchor> = (0..5)
///     .map(|k| Anchor { rid: 0, rpos: 1000 + 100 * k, qpos: 14 + 100 * k, rev: false, span: 15 })
///     .collect();
/// let chains = chain_anchors(anchors, &ChainOpts::default());
/// assert_eq!(chains[0].anchors.len(), 5);
/// assert_eq!(chains[0].ref_range(), (986, 1401));
/// ```
pub fn chain_anchors(mut anchors: Vec<Anchor>, opts: &ChainOpts) -> Vec<Chain> {
    if anchors.is_empty() {
        return Vec::new();
    }
    sort_anchors(&mut anchors);
    let n = anchors.len();
    let mut f = vec![0i32; n]; // best chain score ending at i
    let mut parent = vec![usize::MAX; n];

    for i in 0..n {
        let ai = anchors[i];
        f[i] = ai.span as i32;
        let lo = i.saturating_sub(opts.max_iter);
        let mut skipped = 0usize;
        for j in (lo..i).rev() {
            let aj = anchors[j];
            if aj.rid != ai.rid || aj.rev != ai.rev {
                break; // sorted: previous group ended
            }
            let dr = ai.rpos - aj.rpos;
            if dr == 0 {
                continue; // same reference position cannot chain
            }
            if dr > opts.max_dist {
                break; // sorted by rpos: all further j are farther
            }
            if ai.qpos <= aj.qpos {
                continue; // not colinear on the query
            }
            let dq = ai.qpos - aj.qpos;
            if dq > opts.max_dist {
                continue;
            }
            let dd = dr.abs_diff(dq);
            if dd > opts.bandwidth {
                continue;
            }
            let gain = (dq.min(dr) as i32).min(ai.span as i32) - gap_cost(dd, ai.span);
            let cand = f[j] + gain;
            if cand > f[i] {
                f[i] = cand;
                parent[i] = j;
                skipped = 0;
            } else {
                skipped += 1;
                if skipped > opts.max_skip {
                    break;
                }
            }
        }
    }

    // Backtrack from peaks: order candidate ends by score, greedily take
    // chains whose anchors are unused.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| -f[i]);
    let mut used = vec![false; n];
    let mut chains = Vec::new();
    for &end in &order {
        if used[end] || f[end] < opts.min_score {
            continue;
        }
        let mut idxs = Vec::new();
        let mut cur = end;
        loop {
            if used[cur] {
                break; // ran into a previously consumed chain: cut here
            }
            idxs.push(cur);
            if parent[cur] == usize::MAX {
                break;
            }
            cur = parent[cur];
        }
        if idxs.len() < opts.min_cnt {
            continue;
        }
        for &k in &idxs {
            used[k] = true;
        }
        idxs.reverse();
        let rid = anchors[idxs[0]].rid;
        let rev = anchors[idxs[0]].rev;
        chains.push(Chain {
            anchors: idxs.iter().map(|&k| anchors[k]).collect(),
            score: f[end],
            rid,
            rev,
        });
    }
    chains.sort_by_key(|c| -c.score);
    chains
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(rid: u32, rpos: u32, qpos: u32) -> Anchor {
        Anchor {
            rid,
            rpos,
            qpos,
            rev: false,
            span: 15,
        }
    }

    fn diagonal_anchors(n: u32, r0: u32, q0: u32) -> Vec<Anchor> {
        (0..n).map(|k| mk(0, r0 + 100 * k, q0 + 100 * k)).collect()
    }

    #[test]
    fn perfect_diagonal_forms_one_chain() {
        let chains = chain_anchors(diagonal_anchors(10, 1000, 14), &ChainOpts::default());
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].anchors.len(), 10);
        // 15 for the first anchor + 9 × 15 (min(dq,dr,span) = span, no gap).
        assert_eq!(chains[0].score, 150);
        // Anchors come back in ascending reference order.
        let rp: Vec<u32> = chains[0].anchors.iter().map(|a| a.rpos).collect();
        assert!(rp.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_input_gives_no_chains() {
        assert!(chain_anchors(Vec::new(), &ChainOpts::default()).is_empty());
    }

    #[test]
    fn distant_clusters_form_separate_chains() {
        let mut a = diagonal_anchors(5, 1_000, 14);
        a.extend(diagonal_anchors(5, 500_000, 14)); // far beyond max_dist
        let opts = ChainOpts {
            min_score: 10,
            ..Default::default()
        };
        let chains = chain_anchors(a, &opts);
        assert_eq!(chains.len(), 2);
    }

    #[test]
    fn different_strands_never_chain_together() {
        let mut a = diagonal_anchors(4, 1000, 14);
        a.extend((0..4).map(|k| Anchor {
            rid: 0,
            rpos: 1400 + 100 * k,
            qpos: 500 + 100 * k,
            rev: true,
            span: 15,
        }));
        let opts = ChainOpts {
            min_score: 10,
            min_cnt: 2,
            ..Default::default()
        };
        let chains = chain_anchors(a, &opts);
        assert_eq!(chains.len(), 2);
        assert_ne!(chains[0].rev, chains[1].rev);
    }

    #[test]
    fn gap_penalty_reduces_score() {
        // Same anchor count, but one chain has a 50 bp indel between the
        // last two anchors (dr = 450, dq = 400, |dd| = 50).
        let straight = chain_anchors(diagonal_anchors(5, 1000, 14), &ChainOpts::default());
        let mut skewed_anchors = diagonal_anchors(4, 1000, 14);
        skewed_anchors.push(mk(0, 1300 + 450, 314 + 400));
        let skewed = chain_anchors(skewed_anchors, &ChainOpts::default());
        assert!(skewed[0].score < straight[0].score);
        assert_eq!(skewed[0].anchors.len(), 5);
    }

    #[test]
    fn huge_gap_breaks_the_chain_instead_of_paying() {
        // A 400 bp diagonal jump costs more than restarting, so the final
        // anchor starts its own (filtered-out) chain.
        let mut a = diagonal_anchors(4, 1000, 14);
        a.push(mk(0, 1300 + 500, 314 + 100)); // dd = 400
        let chains = chain_anchors(a, &ChainOpts::default());
        assert_eq!(chains[0].anchors.len(), 4);
    }

    #[test]
    fn bandwidth_splits_wild_diagonal_jumps() {
        let mut a = diagonal_anchors(4, 1000, 14);
        // Next cluster is 3 kb away in reference but 100 bp in query:
        // |dq - dr| ≈ 2900 > bandwidth.
        a.extend(diagonal_anchors(4, 4000, 114));
        let opts = ChainOpts {
            min_score: 10,
            ..Default::default()
        };
        let chains = chain_anchors(a, &opts);
        assert_eq!(chains.len(), 2);
    }

    #[test]
    fn non_colinear_anchor_is_excluded() {
        let mut a = diagonal_anchors(6, 1000, 14);
        a.push(mk(0, 1250, 5000)); // query position wildly off the diagonal
        let chains = chain_anchors(a, &ChainOpts::default());
        assert_eq!(chains[0].anchors.len(), 6);
    }

    #[test]
    fn min_cnt_filters_short_chains() {
        let opts = ChainOpts {
            min_score: 1,
            min_cnt: 4,
            ..Default::default()
        };
        let chains = chain_anchors(diagonal_anchors(3, 1000, 14), &opts);
        assert!(chains.is_empty());
    }

    #[test]
    fn ranges_cover_anchor_spans() {
        let chains = chain_anchors(diagonal_anchors(5, 1000, 140), &ChainOpts::default());
        let (rs, re) = chains[0].ref_range();
        assert_eq!(rs, 1000 + 1 - 15);
        assert_eq!(re, 1401);
        let (qs, qe) = chains[0].query_range();
        assert_eq!(qs, 140 + 1 - 15);
        assert_eq!(qe, 541);
    }
}
