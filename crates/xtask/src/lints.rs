//! The repo-native lint rules — invariants clippy cannot express.
//!
//! Every rule reports `error[<rule>]: <path>:<line>: <message>` and can be
//! suppressed for one site with a justified `// xtask-allow: <rule> —
//! <why>` comment on the same line or the line above (see DESIGN.md §8).
//!
//! | rule | invariant |
//! |------|-----------|
//! | `safety-comment` | every `unsafe` site carries a `// SAFETY:` comment naming the invariant |
//! | `target-feature-gate` | `#[target_feature]` fns are private `unsafe fn`s inside `mmm-align/src/simd/`, reachable only through the dispatch gate |
//! | `no-transmute` | `std::mem::transmute` is banned outright |
//! | `raw-ptr-arith` | raw-pointer arithmetic only in `simd/` and `mmap.rs` |
//! | `no-unwrap` | no `unwrap`/`expect` in non-test lib code |
//! | `scratch-variant` | every public kernel (`align_*`/`extend_*`/`fill_*`) in mmm-align and mmm-exec has a `*_with_scratch` variant |
//! | `stats-forwarding` | `BackendStats` literals in `AlignBackend` impl files must name every field or forward from a non-default base |
//! | `stats-sink` | no ad-hoc `print!`/`eprintln!` in the daemon (`manymap/src/serve/`) — reports go through `StatsSink` or the wire protocol |
//! | `lock-order` | no file acquires two named mutexes in both orders (AB *and* BA) — a static deadlock smell the loom-lite lock-order detector confirms dynamically |
//! | `condvar-wait-loop` | every condvar wait (`.wait(g)` / `.wait_timeout(..)` / `wait_unpoisoned(..)`) sits inside a `while`/`loop` re-check, never an `if` |

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

use crate::lex::{has_word, scan, LineView};

pub const RULES: [&str; 10] = [
    "safety-comment",
    "target-feature-gate",
    "no-transmute",
    "raw-ptr-arith",
    "no-unwrap",
    "scratch-variant",
    "stats-forwarding",
    "stats-sink",
    "lock-order",
    "condvar-wait-loop",
];

/// One lint finding, printable as `error[rule]: path:line: message`.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: String,
    pub path: PathBuf,
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}]: {}:{}: {}",
            self.rule,
            self.path.display(),
            self.line,
            self.message
        )
    }
}

/// Recursively collect `.rs` files under `dir` (skipping `target/`).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Everything the per-file rules need, computed in one pass.
struct FileCtx<'a> {
    rel: &'a Path,
    views: &'a [LineView],
    /// `allows[line]` = rules suppressed at that line (1-based).
    allows: BTreeMap<usize, BTreeSet<String>>,
    /// 1-based lines inside `#[cfg(test)]` / `#[test]` item bodies.
    test_lines: Vec<bool>,
    /// 1-based lines inside `unsafe { .. }` blocks or `unsafe fn` bodies.
    unsafe_lines: Vec<bool>,
}

/// Parse `xtask-allow: <rule> <justification>` suppressions. A suppression
/// with no justification is itself a violation — the comment must say *why*.
/// The directive must open the comment (after the `//` markers); a mention
/// of `xtask-allow:` mid-prose (like this one) is not a directive.
fn parse_allows(
    rel: &Path,
    views: &[LineView],
    out: &mut Vec<Violation>,
) -> BTreeMap<usize, BTreeSet<String>> {
    let mut allows: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for (idx, v) in views.iter().enumerate() {
        let line = idx + 1;
        let opener = v.comment.trim_start_matches(['/', '!', '*', ' ']);
        let Some(rest) = opener.strip_prefix("xtask-allow:") else {
            continue;
        };
        let rest = rest.trim_start();
        let rule: String = rest
            .chars()
            .take_while(|c| c.is_ascii_lowercase() || *c == '-')
            .collect();
        let justification = rest[rule.len()..]
            .trim_start_matches([' ', '\u{2014}', '-', ':', '('])
            .trim();
        if !RULES.contains(&rule.as_str()) {
            out.push(Violation {
                rule: "xtask-allow".into(),
                path: rel.to_path_buf(),
                line,
                message: format!("unknown rule {rule:?} in xtask-allow (known: {RULES:?})"),
            });
            continue;
        }
        if justification.len() < 10 {
            out.push(Violation {
                rule: "xtask-allow".into(),
                path: rel.to_path_buf(),
                line,
                message: format!(
                    "xtask-allow: {rule} needs a justification, e.g. \
                     `// xtask-allow: {rule} — <why this site is sound>`"
                ),
            });
            continue;
        }
        // The suppression covers its own line and the next one, so it can
        // sit above the flagged code or trail it.
        allows.entry(line).or_default().insert(rule.clone());
        allows.entry(line + 1).or_default().insert(rule);
    }
    allows
}

/// Mark lines inside `#[cfg(test)]`-gated or `#[test]`-annotated item
/// bodies by matching the braces that follow the attribute.
fn mark_test_lines(views: &[LineView]) -> Vec<bool> {
    let flat: Vec<(char, usize)> = views
        .iter()
        .enumerate()
        .flat_map(|(idx, v)| {
            v.code
                .chars()
                .chain(std::iter::once('\n'))
                .map(move |c| (c, idx))
        })
        .collect();
    let text: String = flat.iter().map(|(c, _)| *c).collect();
    let mut marks = vec![false; views.len()];

    let mut search = 0;
    while let Some(off) = text[search..].find("#[cfg(") {
        let attr_start = search + off;
        let open = attr_start + "#[cfg(".len() - 1;
        // Find the matching `)` of the cfg argument list.
        let bytes: Vec<char> = text.chars().collect();
        let mut depth = 0usize;
        let mut close = None;
        for (k, ch) in bytes.iter().enumerate().skip(open) {
            match ch {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(k);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(close) = close else { break };
        search = close + 1;
        let args: String = bytes[open + 1..close].iter().collect();
        if !has_word(&args, "test") {
            continue;
        }
        mark_following_block(&flat, close + 1, &mut marks);
    }
    let mut search = 0;
    while let Some(off) = text[search..].find("#[test]") {
        let at = search + off;
        search = at + "#[test]".len();
        mark_following_block(&flat, search, &mut marks);
    }
    marks
}

/// Mark every line of the first `{ .. }` block at or after char `from`.
fn mark_following_block(flat: &[(char, usize)], from: usize, marks: &mut [bool]) {
    let mut depth = 0usize;
    let mut started = false;
    let mut start_line = 0usize;
    for &(c, line) in flat.iter().skip(from) {
        match c {
            '{' => {
                if !started {
                    started = true;
                    start_line = line;
                }
                depth += 1;
            }
            '}' if started => {
                depth -= 1;
                if depth == 0 {
                    for m in marks.iter_mut().take(line + 1).skip(start_line) {
                        *m = true;
                    }
                    return;
                }
            }
            // An item without a block (e.g. `#[cfg(test)] use ...;`) ends
            // the search at its semicolon.
            ';' if !started => return,
            _ => {}
        }
    }
}

/// Mark lines inside `unsafe` blocks / `unsafe fn` bodies / `unsafe impl`
/// blocks by tracking the brace that follows each `unsafe` keyword.
fn mark_unsafe_lines(views: &[LineView]) -> Vec<bool> {
    let mut marks = vec![false; views.len()];
    let mut pending_unsafe = false;
    let mut stack: Vec<bool> = Vec::new();
    let mut unsafe_depth = 0usize;
    for (idx, v) in views.iter().enumerate() {
        let chars: Vec<char> = v.code.chars().collect();
        let mut line_unsafe = unsafe_depth > 0;
        let mut k = 0;
        while k < chars.len() {
            let c = chars[k];
            if c.is_alphabetic() || c == '_' {
                let start = k;
                while k < chars.len() && (chars[k].is_alphanumeric() || chars[k] == '_') {
                    k += 1;
                }
                if chars[start..k].iter().collect::<String>() == "unsafe" {
                    pending_unsafe = true;
                }
                continue;
            }
            match c {
                '{' => {
                    stack.push(pending_unsafe);
                    if pending_unsafe {
                        unsafe_depth += 1;
                        line_unsafe = true;
                    }
                    pending_unsafe = false;
                }
                '}' => {
                    if let Some(was_unsafe) = stack.pop() {
                        if was_unsafe {
                            unsafe_depth -= 1;
                        }
                    }
                }
                // `unsafe fn f();` in a trait: no body, drop the flag.
                ';' => pending_unsafe = false,
                _ => {}
            }
            k += 1;
        }
        marks[idx] = line_unsafe || unsafe_depth > 0;
    }
    marks
}

fn emit(ctx: &FileCtx<'_>, out: &mut Vec<Violation>, rule: &str, line: usize, message: String) {
    if ctx
        .allows
        .get(&line)
        .is_some_and(|rules| rules.contains(rule))
    {
        return;
    }
    out.push(Violation {
        rule: rule.to_string(),
        path: ctx.rel.to_path_buf(),
        line,
        message,
    });
}

/// `safety-comment`: every `unsafe` keyword site must have a comment
/// containing `SAFETY:` (or a `# Safety` doc section) on the same line or
/// within the 6 lines above it.
fn rule_safety_comment(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    for (idx, v) in ctx.views.iter().enumerate() {
        if !has_word(&v.code, "unsafe") {
            continue;
        }
        // `unsafe` inside an already-unsafe context line (e.g. the body of
        // an `unsafe fn`) still demands its own comment — skip only lines
        // where the keyword is part of a `use`/path, which cannot happen
        // for a keyword. Look for the nearest comment upward.
        let lo = idx.saturating_sub(6);
        let documented = ctx.views[lo..=idx]
            .iter()
            .any(|w| w.comment.contains("SAFETY:") || w.comment.contains("# Safety"));
        if !documented {
            emit(
                ctx,
                out,
                "safety-comment",
                idx + 1,
                "`unsafe` without a `// SAFETY:` comment naming the invariant \
                 (alignment / bounds / feature availability) on this or the \
                 preceding lines"
                    .into(),
            );
        }
    }
}

/// `target-feature-gate`: `#[target_feature]` may only annotate non-`pub`
/// `unsafe fn`s inside `crates/mmm-align/src/simd/`, so the only route to
/// them is the module's safe wrapper asserting `available()` — which is
/// what `dispatch.rs` selects through.
fn rule_target_feature(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let in_simd = ctx.rel.to_string_lossy().contains("mmm-align/src/simd/");
    for (idx, v) in ctx.views.iter().enumerate() {
        if !v.code.contains("#[target_feature") {
            continue;
        }
        if !in_simd {
            emit(
                ctx,
                out,
                "target-feature-gate",
                idx + 1,
                "#[target_feature] outside mmm-align/src/simd/ — kernels must \
                 live behind the dispatch.rs runtime-detection gate"
                    .into(),
            );
            continue;
        }
        // Find the annotated fn (skip further attributes / blank lines).
        let mut fn_line = None;
        for (j, w) in ctx.views.iter().enumerate().skip(idx + 1).take(4) {
            let code = w.code.trim();
            if code.is_empty() || code.starts_with("#[") {
                continue;
            }
            fn_line = Some((j, code.to_string()));
            break;
        }
        match fn_line {
            Some((_, sig)) if has_word(&sig, "pub") => emit(
                ctx,
                out,
                "target-feature-gate",
                idx + 1,
                "#[target_feature] fn must not be `pub` — callers must go \
                 through the safe wrapper that asserts `available()`"
                    .into(),
            ),
            Some((_, sig)) if !has_word(&sig, "unsafe") => emit(
                ctx,
                out,
                "target-feature-gate",
                idx + 1,
                "#[target_feature] fn must be `unsafe fn` so every call site \
                 is forced to state the feature-availability invariant"
                    .into(),
            ),
            Some(_) => {}
            None => emit(
                ctx,
                out,
                "target-feature-gate",
                idx + 1,
                "#[target_feature] not followed by a function".into(),
            ),
        }
    }
}

/// `no-transmute`: `transmute` is never acceptable in this codebase — the
/// kernels reinterpret memory through typed slices and `_mm_*` intrinsics.
fn rule_no_transmute(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    for (idx, v) in ctx.views.iter().enumerate() {
        if has_word(&v.code, "transmute") {
            emit(
                ctx,
                out,
                "no-transmute",
                idx + 1,
                "`transmute` is banned; use typed loads/stores or intrinsics".into(),
            );
        }
    }
}

/// `raw-ptr-arith`: `.add( / .sub( / .offset( / from_raw_parts` inside
/// `unsafe` regions are confined to the SIMD kernels and `mmap.rs`, where
/// the bounds invariants are documented and oracle/Miri-checked.
fn rule_raw_ptr(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let rel = ctx.rel.to_string_lossy();
    if rel.contains("mmm-align/src/simd/") || rel.ends_with("mmap.rs") {
        return;
    }
    const PATTERNS: [&str; 4] = [".add(", ".sub(", ".offset(", "from_raw_parts"];
    for (idx, v) in ctx.views.iter().enumerate() {
        if !ctx.unsafe_lines[idx] {
            continue; // `.add(` on a safe line is ordinary arithmetic/API
        }
        if PATTERNS.iter().any(|p| v.code.contains(p)) {
            emit(
                ctx,
                out,
                "raw-ptr-arith",
                idx + 1,
                "raw-pointer arithmetic outside simd/ and mmap.rs — keep \
                 pointer math where its invariants are audited"
                    .into(),
            );
        }
    }
}

/// `no-unwrap`: lib code must propagate errors (the panic-free mapping
/// pipeline contract); `unwrap`/`expect` stay confined to test code.
fn rule_no_unwrap(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    let rel = ctx.rel.to_string_lossy();
    let is_lib = rel.starts_with("crates/") && rel.contains("/src/");
    if !is_lib {
        return;
    }
    for (idx, v) in ctx.views.iter().enumerate() {
        if ctx.test_lines[idx] {
            continue;
        }
        if v.code.contains(".unwrap()") || v.code.contains(".expect(") {
            emit(
                ctx,
                out,
                "no-unwrap",
                idx + 1,
                "unwrap/expect in non-test lib code — return an error or use \
                 the poison-tolerant helpers (see mmm-pipeline::sync)"
                    .into(),
            );
        }
    }
}

/// `stats-sink`: the daemon's only channels to the outside are the wire
/// protocol and the `StatsSink` passed into `serve` — a stray
/// `eprintln!` in `manymap/src/serve/` would interleave with the assembled
/// report (or vanish entirely when a test runs the daemon in-process
/// against a `BufferSink`). Writing to the process streams directly is
/// therefore banned in the serve module; tests are exempt.
fn rule_stats_sink(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    if !ctx.rel.to_string_lossy().contains("manymap/src/serve/") {
        return;
    }
    const MACROS: [&str; 4] = ["eprintln!", "eprint!", "println!", "print!"];
    for (idx, v) in ctx.views.iter().enumerate() {
        if ctx.test_lines[idx] {
            continue;
        }
        if let Some(m) = MACROS.iter().find(|m| v.code.contains(*m)) {
            emit(
                ctx,
                out,
                "stats-sink",
                idx + 1,
                format!(
                    "`{m}` in the serve module — daemon output must go through \
                     the StatsSink handed to `serve` (or a protocol frame), \
                     never straight to the process streams"
                ),
            );
        }
    }
}

/// The last path segment of a borrow expression: `&self.inner` → `inner`,
/// `&state.slot` → `slot`, `&queue` → `queue`.
fn last_segment(expr: &str) -> String {
    expr.trim()
        .trim_start_matches(['&', '*', ' '])
        .rsplit('.')
        .next()
        .unwrap_or("")
        .chars()
        .filter(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

/// Mutex acquisitions on one code line: the lock-target names, in order.
/// Recognizes the two idioms this codebase uses — the poison-tolerant
/// helper `lock_unpoisoned(&EXPR)` and a direct `RECEIVER.lock()` call.
fn lock_targets(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut search = 0;
    while let Some(off) = code[search..].find("lock_unpoisoned(") {
        let at = search + off;
        search = at + "lock_unpoisoned(".len();
        // Skip the helper's own definition (`pub fn lock_unpoisoned(..)`).
        if code[..at].trim_end().ends_with("fn") || code[..at].contains("fn lock_unpoisoned") {
            continue;
        }
        let arg: String = code[search..]
            .chars()
            .take_while(|c| *c != ')' && *c != ',')
            .collect();
        let name = last_segment(&arg);
        if !name.is_empty() {
            out.push((at, name));
        }
    }
    let mut search = 0;
    while let Some(off) = code[search..].find(".lock()") {
        let at = search + off;
        search = at + ".lock()".len();
        // Walk the receiver chain backwards and take its last segment:
        // `self.inner.lock()` → `inner`, `ledger.lock()` → `ledger`.
        let recv_end = at;
        let mut recv_start = recv_end;
        let chars: Vec<char> = code[..recv_end].chars().collect();
        let mut k = chars.len();
        while k > 0
            && (chars[k - 1].is_alphanumeric() || chars[k - 1] == '_' || chars[k - 1] == '.')
        {
            k -= 1;
            recv_start = recv_end - (chars.len() - k);
        }
        let name = last_segment(&code[recv_start..recv_end]);
        if !name.is_empty() {
            out.push((at, name));
        }
    }
    out.sort_by_key(|(at, _)| *at);
    out.into_iter().map(|(_, name)| name).collect()
}

/// A guard currently held while scanning a file: which mutex it locks, the
/// binding it lives in (`None` for a same-statement temporary), the brace
/// depth it was taken at, and the line for reporting.
struct HeldGuard {
    target: String,
    binding: Option<String>,
    depth: usize,
    line: usize,
}

/// `lock-order`: within one file, two named mutexes must always be taken
/// in the same order. The scan is lexical — guards are tracked from their
/// `let` binding to `drop(..)` or the end of their block — and the edge
/// set is per file, so a genuine AB/BA inversion across files still needs
/// the dynamic loom-lite detector; this rule catches the common same-file
/// case at lint speed.
fn rule_lock_order(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    if !ctx.rel.to_string_lossy().contains("/src/") {
        return;
    }
    // (held, acquired) -> first line the order was seen at.
    let mut edges: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut held: Vec<HeldGuard> = Vec::new();
    let mut depth = 0usize;
    for (idx, v) in ctx.views.iter().enumerate() {
        let line = idx + 1;
        let code = v.code.trim();
        let start_depth = depth;
        for c in v.code.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        // `drop(g)` releases the named guard early.
        held.retain(|g| {
            g.binding
                .as_ref()
                .is_none_or(|b| !v.code.contains(&format!("drop({b})")))
        });
        // Leaving the block a guard was taken in releases it.
        held.retain(|g| depth >= g.depth);
        if ctx.test_lines[idx] {
            continue;
        }
        let targets = lock_targets(&v.code);
        if targets.is_empty() {
            continue;
        }
        // A `let` statement whose initializer locks keeps the guard alive;
        // anything else (`q.lock().field = ..`) is a same-statement
        // temporary that still orders against the guards currently held.
        let binding = code.strip_prefix("let ").map(|rest| {
            rest.trim_start_matches("mut ")
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect::<String>()
        });
        for target in targets {
            for g in &held {
                if g.target != target {
                    edges
                        .entry((g.target.clone(), target.clone()))
                        .or_insert(line);
                }
            }
            held.push(HeldGuard {
                target,
                binding: binding.clone(),
                depth: start_depth.max(1),
                line,
            });
        }
        // Only a `let`-bound guard survives past its own statement.
        if binding.is_none() {
            held.retain(|g| g.line != line);
        }
    }
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for ((a, b), &line_ab) in &edges {
        let Some(&line_ba) = edges.get(&(b.clone(), a.clone())) else {
            continue;
        };
        let key = if a < b {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        };
        if !reported.insert(key) {
            continue;
        }
        let (first, later) = if line_ab >= line_ba {
            (line_ba, line_ab)
        } else {
            (line_ab, line_ba)
        };
        emit(
            ctx,
            out,
            "lock-order",
            later,
            format!(
                "mutexes `{a}` and `{b}` are acquired in both orders in this \
                 file (also line {first}) — pick one global order so no pair \
                 of threads can deadlock holding one each"
            ),
        );
    }
}

/// `condvar-wait-loop`: a condvar wakeup proves nothing about the guarded
/// predicate — spurious wakeups and raced-away state both require the wait
/// to sit inside a `while`/`loop` that re-checks. Flags `.wait(g)`,
/// `.wait_timeout(..)` and the repo helper `wait_unpoisoned(..)` whose
/// enclosing blocks contain no loop; `wait_while`/`wait_timeout_while`
/// re-check internally and `Child::wait()` (no argument) is not a condvar.
fn rule_condvar_wait_loop(ctx: &FileCtx<'_>, out: &mut Vec<Violation>) {
    if !ctx.rel.to_string_lossy().contains("/src/") {
        return;
    }
    let flat: Vec<(char, usize)> = ctx
        .views
        .iter()
        .enumerate()
        .flat_map(|(idx, v)| {
            v.code
                .chars()
                .chain(std::iter::once('\n'))
                .map(move |c| (c, idx))
        })
        .collect();
    let text: String = flat.iter().map(|(c, _)| *c).collect();

    // Offsets of condvar-wait call sites.
    let mut sites: Vec<usize> = Vec::new();
    for pat in [".wait(", ".wait_timeout(", "wait_unpoisoned("] {
        let mut search = 0;
        while let Some(off) = text[search..].find(pat) {
            let at = search + off;
            search = at + pat.len();
            // `child.wait()` takes no guard; a condvar wait always does.
            if text[search..].trim_start().starts_with(')') {
                continue;
            }
            // Skip the helper's own definition line (`pub fn wait_unpoisoned(..`).
            if pat == "wait_unpoisoned(" {
                let line_start = text[..at].rfind('\n').map_or(0, |p| p + 1);
                if text[line_start..at].contains("fn ") {
                    continue;
                }
            }
            sites.push(at);
        }
    }
    sites.sort_unstable();
    sites.dedup();

    for at in sites {
        let line_idx = flat[at].1;
        if ctx.test_lines[line_idx] {
            continue;
        }
        // Walk the brace structure up to the call site; the wait is sound
        // iff one enclosing block is a loop body. A block is a loop body
        // when the text between the previous statement boundary and its
        // `{` uses `while`/`loop`/`for` — excluding `impl .. for ..`.
        let mut stack: Vec<bool> = Vec::new();
        let mut seg_start = 0usize;
        let chars: Vec<char> = text.chars().collect();
        for (k, &c) in chars.iter().enumerate().take(at) {
            match c {
                '{' => {
                    let seg: String = chars[seg_start..k].iter().collect();
                    let looping = (has_word(&seg, "while")
                        || has_word(&seg, "loop")
                        || has_word(&seg, "for"))
                        && !has_word(&seg, "impl");
                    stack.push(looping);
                    seg_start = k + 1;
                }
                '}' => {
                    stack.pop();
                    seg_start = k + 1;
                }
                ';' => seg_start = k + 1,
                _ => {}
            }
        }
        if !stack.iter().any(|&looping| looping) {
            emit(
                ctx,
                out,
                "condvar-wait-loop",
                line_idx + 1,
                "condvar wait outside a `while`/`loop` re-check — a spurious \
                 or raced-away wakeup leaves the guarded predicate false; \
                 re-test it in a loop around the wait"
                    .into(),
            );
        }
    }
}

/// `scratch-variant`: every public kernel entry point (in mmm-align and the
/// mmm-exec batch executors) must offer the zero-allocation
/// `*_with_scratch` form (the PR-1 contract).
fn rule_scratch_variant(files: &[(PathBuf, Vec<LineView>)], out: &mut Vec<Violation>) {
    let mut kernels: Vec<(PathBuf, usize, String)> = Vec::new();
    let mut names: BTreeSet<String> = BTreeSet::new();
    for (rel, views) in files {
        let rel_str = rel.to_string_lossy();
        if !rel_str.contains("mmm-align/src/") && !rel_str.contains("mmm-exec/src/") {
            continue;
        }
        for (idx, v) in views.iter().enumerate() {
            let code = v.code.trim_start();
            let Some(rest) = code.strip_prefix("pub fn ") else {
                continue;
            };
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                continue;
            }
            names.insert(name.clone());
            let is_kernel = ["align_", "extend_", "fill_"]
                .iter()
                .any(|p| name.starts_with(p));
            if is_kernel && !name.ends_with("_with_scratch") {
                kernels.push((rel.clone(), idx + 1, name));
            }
        }
    }
    for (rel, line, name) in kernels {
        if !names.contains(&format!("{name}_with_scratch")) {
            out.push(Violation {
                rule: "scratch-variant".into(),
                path: rel,
                line,
                message: format!(
                    "public kernel `{name}` has no `{name}_with_scratch` \
                     variant — every kernel must offer the zero-allocation \
                     scratch-arena form"
                ),
            });
        }
    }
}

/// Field names of `pub struct BackendStats`, read from its declaration so
/// the rule tracks field additions automatically.
fn backend_stats_fields(views: &[LineView]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut in_struct = false;
    for v in views {
        let code = v.code.trim();
        if code.starts_with("pub struct BackendStats") {
            in_struct = true;
            continue;
        }
        if in_struct {
            if code.starts_with('}') {
                break;
            }
            if let Some(rest) = code.strip_prefix("pub ") {
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() && rest[name.len()..].trim_start().starts_with(':') {
                    fields.push(name);
                }
            }
        }
    }
    fields
}

/// One `BackendStats { .. }` struct literal: the 1-based line it opens on,
/// the field names it assigns, and the functional-update base expression
/// (the text after `..`), if any.
struct StatsLiteral {
    line: usize,
    named: BTreeSet<String>,
    rest: Option<String>,
}

/// Find `BackendStats { ... }` struct literals (not the declaration, not
/// `BackendStats::default()` calls) in one file.
fn backend_stats_literals(views: &[LineView]) -> Vec<StatsLiteral> {
    let flat: Vec<(char, usize)> = views
        .iter()
        .enumerate()
        .flat_map(|(idx, v)| {
            v.code
                .chars()
                .chain(std::iter::once('\n'))
                .map(move |c| (c, idx))
        })
        .collect();
    let text: String = flat.iter().map(|(c, _)| *c).collect();

    let mut out = Vec::new();
    let mut search = 0;
    while let Some(off) = text[search..].find("BackendStats") {
        let at = search + off;
        search = at + "BackendStats".len();
        // Declarations and impls are not literals.
        let before = text[..at].trim_end();
        if before.ends_with("struct") || before.ends_with("impl") || before.ends_with("for") {
            continue;
        }
        // Word boundary on the left (don't match `GpuBackendStats`).
        if text[..at]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            continue;
        }
        let after = text[search..].trim_start();
        if !after.starts_with('{') {
            continue; // a path use (`BackendStats::default()`, type position)
        }
        let open = search + (text[search..].len() - after.len());
        // Collect the depth-1 body of the literal.
        let chars: Vec<char> = text.chars().collect();
        let mut depth = 0usize;
        let mut close = None;
        for (k, ch) in chars.iter().enumerate().skip(open) {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(k);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(close) = close else { break };
        let body: String = chars[open + 1..close].iter().collect();
        // Split the body at depth-0 commas and read each segment's shape.
        let mut named = BTreeSet::new();
        let mut rest = None;
        let mut seg = String::new();
        let mut depth = 0i32;
        for ch in body.chars().chain(std::iter::once(',')) {
            match ch {
                '{' | '(' | '[' => depth += 1,
                '}' | ')' | ']' => depth -= 1,
                ',' if depth == 0 => {
                    let s = seg.trim();
                    if let Some(base) = s.strip_prefix("..") {
                        rest = Some(base.trim().to_string());
                    } else {
                        let name: String = s
                            .chars()
                            .take_while(|c| c.is_alphanumeric() || *c == '_')
                            .collect();
                        if !name.is_empty() {
                            named.insert(name);
                        }
                    }
                    seg.clear();
                    continue;
                }
                _ => {}
            }
            seg.push(ch);
        }
        out.push(StatsLiteral {
            line: flat[at].1 + 1,
            named,
            rest,
        });
        search = close + 1;
    }
    out
}

/// `stats-forwarding`: in any file implementing `AlignBackend`, and in
/// every module of the executor crate (the supervisor, scheduler, and
/// prefilter all build or merge the same counters without implementing the
/// trait), a `BackendStats { .. }` literal must either name every field the
/// struct declares or forward the remainder from a non-default base
/// (`..inner_stats`). A `..Default::default()` tail compiles cleanly when a
/// later PR adds a counter, and silently reports it as zero — exactly the
/// accounting drift this rule makes loud. Sites where zeroes are provably
/// right carry an `xtask-allow: stats-forwarding — <why>`.
fn rule_stats_forwarding(
    files: &[(PathBuf, Vec<LineView>)],
    allows: &[BTreeMap<usize, BTreeSet<String>>],
    out: &mut Vec<Violation>,
) {
    let Some(fields) = files.iter().find_map(|(rel, views)| {
        rel.to_string_lossy()
            .ends_with("mmm-exec/src/stats.rs")
            .then(|| backend_stats_fields(views))
    }) else {
        return;
    };
    if fields.is_empty() {
        return;
    }
    for ((rel, views), file_allows) in files.iter().zip(allows) {
        let in_exec_crate = rel.to_string_lossy().contains("mmm-exec/src/");
        let impls_backend = views
            .iter()
            .any(|v| v.code.contains("impl AlignBackend for"));
        if !in_exec_crate && !impls_backend {
            continue;
        }
        let test_lines = mark_test_lines(views);
        for lit in backend_stats_literals(views) {
            if test_lines.get(lit.line - 1).copied().unwrap_or(false) {
                continue;
            }
            match &lit.rest {
                // No functional update: the compiler already forces every
                // field to be named, including future ones.
                None => continue,
                // `..other_stats` forwards whatever it came from.
                Some(base)
                    if !base.contains("Default::default()")
                        && !base.contains("BackendStats::default()") =>
                {
                    continue;
                }
                Some(_) => {}
            }
            let missing: Vec<&str> = fields
                .iter()
                .filter(|f| !lit.named.contains(*f))
                .map(String::as_str)
                .collect();
            if missing.is_empty() {
                continue;
            }
            if file_allows
                .get(&lit.line)
                .is_some_and(|rules| rules.contains("stats-forwarding"))
            {
                continue;
            }
            out.push(Violation {
                rule: "stats-forwarding".into(),
                path: rel.clone(),
                line: lit.line,
                message: format!(
                    "BackendStats literal defaults fields [{}] in an AlignBackend \
                     impl file — name them explicitly, forward with `..inner`, or \
                     justify the zeros with an xtask-allow",
                    missing.join(", ")
                ),
            });
        }
    }
}

/// Run every rule over the workspace rooted at `root`. Paths in the returned
/// violations are relative to `root`.
pub fn run(root: &Path) -> Result<Vec<Violation>, String> {
    let mut paths = Vec::new();
    for top in ["crates", "shims"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut paths)?;
        }
    }
    paths.sort();

    let mut out = Vec::new();
    let mut parsed: Vec<(PathBuf, Vec<LineView>)> = Vec::new();
    for path in &paths {
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        parsed.push((rel, scan(&src)));
    }

    let all_allows: Vec<BTreeMap<usize, BTreeSet<String>>> = parsed
        .iter()
        .map(|(rel, views)| parse_allows(rel, views, &mut out))
        .collect();
    for ((rel, views), allows) in parsed.iter().zip(&all_allows) {
        let ctx = FileCtx {
            rel,
            views,
            allows: allows.clone(),
            test_lines: mark_test_lines(views),
            unsafe_lines: mark_unsafe_lines(views),
        };
        rule_safety_comment(&ctx, &mut out);
        rule_target_feature(&ctx, &mut out);
        rule_no_transmute(&ctx, &mut out);
        rule_raw_ptr(&ctx, &mut out);
        rule_no_unwrap(&ctx, &mut out);
        rule_stats_sink(&ctx, &mut out);
        rule_lock_order(&ctx, &mut out);
        rule_condvar_wait_loop(&ctx, &mut out);
    }
    rule_scratch_variant(&parsed, &mut out);
    rule_stats_forwarding(&parsed, &all_allows, &mut out);

    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_snippet(rel: &str, src: &str) -> Vec<Violation> {
        let views = scan(src);
        let mut out = Vec::new();
        let rel = PathBuf::from(rel);
        let allows = parse_allows(&rel, &views, &mut out);
        let ctx = FileCtx {
            rel: &rel,
            views: &views,
            allows,
            test_lines: mark_test_lines(&views),
            unsafe_lines: mark_unsafe_lines(&views),
        };
        rule_safety_comment(&ctx, &mut out);
        rule_target_feature(&ctx, &mut out);
        rule_no_transmute(&ctx, &mut out);
        rule_raw_ptr(&ctx, &mut out);
        rule_no_unwrap(&ctx, &mut out);
        rule_stats_sink(&ctx, &mut out);
        rule_lock_order(&ctx, &mut out);
        rule_condvar_wait_loop(&ctx, &mut out);
        out
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let v = check_snippet("crates/a/src/lib.rs", "fn f() {\n    unsafe { g() }\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "safety-comment");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn safety_comment_above_or_inline_passes() {
        let above = "fn f() {\n    // SAFETY: g is sound because x.\n    unsafe { g() }\n}\n";
        assert!(check_snippet("crates/a/src/lib.rs", above).is_empty());
        let inline = "fn f() {\n    unsafe { g() } // SAFETY: g is sound.\n}\n";
        assert!(check_snippet("crates/a/src/lib.rs", inline).is_empty());
    }

    #[test]
    fn unsafe_in_string_or_comment_is_ignored() {
        let src = "fn f() {\n    let s = \"unsafe { }\"; // unsafe in prose\n}\n";
        assert!(check_snippet("crates/a/src/lib.rs", src).is_empty());
    }

    #[test]
    fn transmute_is_flagged() {
        let src = "// SAFETY: irrelevant.\nfn f() { let x = std::mem::transmute(y); }\n";
        let v = check_snippet("crates/a/src/lib.rs", src);
        assert!(v.iter().any(|v| v.rule == "no-transmute"), "{v:?}");
    }

    #[test]
    fn unwrap_in_lib_flagged_in_tests_ok() {
        let src =
            "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn g() { y.unwrap(); }\n}\n";
        let v = check_snippet("crates/a/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "no-unwrap");
        assert_eq!(v[0].line, 1);
        // Same line in an integration test file: fine.
        assert!(check_snippet("crates/a/tests/t.rs", "fn f() { x.unwrap(); }\n").is_empty());
    }

    #[test]
    fn cfg_all_test_blocks_are_test_code() {
        let src = "#[cfg(all(test, not(miri)))]\nmod tests {\n    fn g() { y.unwrap(); }\n}\n";
        assert!(check_snippet("crates/a/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f() { x.unwrap_or_else(|e| e.into_inner()); }\n";
        assert!(check_snippet("crates/a/src/lib.rs", src).is_empty());
    }

    #[test]
    fn raw_ptr_arith_only_in_unsafe_regions_and_flagged_outside_simd() {
        // Safe-code `.add(` (a plain method) is not pointer arithmetic.
        let safe = "fn f(t: &mut Timer) { t.add(Stage::Align, 1.0); }\n";
        assert!(check_snippet("crates/mmm-io/src/timer.rs", safe).is_empty());
        // The same token inside an unsafe block outside simd/ is flagged.
        let hot = "fn f(p: *const u8) {\n    // SAFETY: in bounds.\n    unsafe { p.add(1); }\n}\n";
        let v = check_snippet("crates/mmm-chain/src/lib.rs", hot);
        assert!(v.iter().any(|v| v.rule == "raw-ptr-arith"), "{v:?}");
        // ...but allowed inside the simd kernels.
        assert!(check_snippet("crates/mmm-align/src/simd/sse.rs", hot).is_empty());
    }

    #[test]
    fn unsafe_fn_body_counts_as_unsafe_region() {
        let src =
            "// SAFETY: caller upholds bounds.\nunsafe fn f(p: *const u8) {\n    p.add(1);\n}\n";
        let v = check_snippet("crates/mmm-chain/src/lib.rs", src);
        assert!(v.iter().any(|v| v.rule == "raw-ptr-arith"), "{v:?}");
    }

    #[test]
    fn xtask_allow_with_justification_suppresses() {
        let src = "fn f(p: *const u8) {\n    // SAFETY: in bounds.\n    // xtask-allow: raw-ptr-arith — disjoint index writes, barrier-bounded.\n    unsafe { p.add(1); }\n}\n";
        assert!(check_snippet("crates/mmm-chain/src/lib.rs", src).is_empty());
    }

    #[test]
    fn xtask_allow_without_justification_is_itself_flagged() {
        let src = "fn f(p: *const u8) {\n    // SAFETY: in bounds.\n    // xtask-allow: raw-ptr-arith\n    unsafe { p.add(1); }\n}\n";
        let v = check_snippet("crates/mmm-chain/src/lib.rs", src);
        assert!(v.iter().any(|v| v.rule == "xtask-allow"), "{v:?}");
    }

    #[test]
    fn xtask_allow_mentioned_in_prose_is_not_a_directive() {
        let src = "//! Suppress a site with `xtask-allow: <rule> — <why>`.\nfn f() {}\n";
        assert!(check_snippet("crates/a/src/lib.rs", src).is_empty());
    }

    #[test]
    fn target_feature_must_be_private_unsafe_in_simd() {
        let good = "// SAFETY: callers check available().\n#[target_feature(enable = \"sse4.1\")]\nunsafe fn inner() {}\n";
        assert!(check_snippet("crates/mmm-align/src/simd/sse.rs", good).is_empty());
        let outside = check_snippet("crates/mmm-chain/src/lib.rs", good);
        assert!(
            outside.iter().any(|v| v.rule == "target-feature-gate"),
            "{outside:?}"
        );
        let public = "// SAFETY: callers check available().\n#[target_feature(enable = \"sse4.1\")]\npub unsafe fn inner() {}\n";
        let v = check_snippet("crates/mmm-align/src/simd/sse.rs", public);
        assert!(v.iter().any(|v| v.rule == "target-feature-gate"), "{v:?}");
    }

    /// A minimal stats.rs declaration plus one more file, through the
    /// cross-file stats-forwarding rule.
    fn check_stats_forwarding_at(rel: &str, src: &str) -> Vec<Violation> {
        let stats_src = "pub struct BackendStats {\n    pub batches: u64,\n    pub jobs: u64,\n    pub retries: u64,\n}\n";
        let files = vec![
            (
                PathBuf::from("crates/mmm-exec/src/stats.rs"),
                scan(stats_src),
            ),
            (PathBuf::from(rel), scan(src)),
        ];
        let mut out = Vec::new();
        let allows: Vec<_> = files
            .iter()
            .map(|(rel, views)| parse_allows(rel, views, &mut out))
            .collect();
        rule_stats_forwarding(&files, &allows, &mut out);
        out
    }

    fn check_stats_forwarding(backend_src: &str) -> Vec<Violation> {
        check_stats_forwarding_at("crates/mmm-exec/src/somebackend.rs", backend_src)
    }

    #[test]
    fn stats_forwarding_flags_defaulted_fields() {
        let src = "impl AlignBackend for X {}\nfn f() {\n    let s = BackendStats {\n        batches: 1,\n        ..Default::default()\n    };\n}\n";
        let v = check_stats_forwarding(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "stats-forwarding");
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("jobs"), "{}", v[0].message);
        assert!(v[0].message.contains("retries"), "{}", v[0].message);
    }

    #[test]
    fn stats_forwarding_accepts_exhaustive_and_forwarding_literals() {
        // All fields named: fine (and `..Default::default()` is then moot).
        let full = "impl AlignBackend for X {}\nfn f() {\n    let s = BackendStats { batches: 1, jobs: 2, retries: 0 };\n}\n";
        assert!(check_stats_forwarding(full).is_empty());
        // Forwarding from a real base: fine, the base carries the counters.
        let fwd = "impl AlignBackend for X {}\nfn f(inner: BackendStats) {\n    let s = BackendStats { batches: 1, ..inner };\n}\n";
        assert!(check_stats_forwarding(fwd).is_empty());
        // `BackendStats::default()` in expression position is not a literal.
        let call = "impl AlignBackend for X {}\nfn f() { let s = BackendStats::default(); }\n";
        assert!(check_stats_forwarding(call).is_empty());
    }

    #[test]
    fn stats_forwarding_ignores_non_backend_files_and_tests() {
        // No `impl AlignBackend for` and not in the executor crate: out of
        // scope (callers elsewhere consume stats, they don't fabricate them).
        let plain = "fn f() {\n    let s = BackendStats { batches: 1, ..Default::default() };\n}\n";
        assert!(check_stats_forwarding_at("crates/manymap/src/mapper.rs", plain).is_empty());
        // Test code may shorthand freely.
        let test = "impl AlignBackend for X {}\n#[cfg(test)]\nmod tests {\n    fn g() {\n        let s = BackendStats { jobs: 1, ..Default::default() };\n    }\n}\n";
        assert!(check_stats_forwarding(test).is_empty());
    }

    #[test]
    fn stats_forwarding_covers_executor_modules_without_an_impl() {
        // The scheduler and prefilter modules never write `impl AlignBackend
        // for`, but they sit on the dispatch path; a defaulted literal there
        // is the same accounting drift the rule exists for.
        let plain = "fn f() {\n    let s = BackendStats { batches: 1, ..Default::default() };\n}\n";
        for rel in [
            "crates/mmm-exec/src/sched.rs",
            "crates/mmm-exec/src/filter.rs",
            "crates/mmm-exec/src/supervisor.rs",
        ] {
            let v = check_stats_forwarding_at(rel, plain);
            assert_eq!(v.len(), 1, "{rel}: {v:?}");
            assert_eq!(v[0].rule, "stats-forwarding");
        }
    }

    #[test]
    fn stats_forwarding_respects_justified_allow() {
        let src = "impl AlignBackend for X {}\nfn f() {\n    // xtask-allow: stats-forwarding — omitted counters are structurally zero here.\n    let s = BackendStats {\n        batches: 1,\n        ..Default::default()\n    };\n}\n";
        assert!(check_stats_forwarding(src).is_empty());
    }

    #[test]
    fn stats_sink_bans_process_streams_in_serve_only() {
        let src = "fn f() { eprintln!(\"oops\"); }\n";
        let v = check_snippet("crates/manymap/src/serve/server.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "stats-sink");
        // Outside the serve module the CLI may still talk to stderr.
        assert!(check_snippet("crates/manymap/src/bin/manymap.rs", src).is_empty());
        // Test code inside the serve module is exempt.
        let test = "#[cfg(test)]\nmod tests {\n    fn g() { println!(\"dbg\"); }\n}\n";
        assert!(check_snippet("crates/manymap/src/serve/proto.rs", test).is_empty());
        // A mention in prose (comment) is not a call.
        let prose = "//! Never eprintln! here; use StatsSink.\nfn f() {}\n";
        assert!(check_snippet("crates/manymap/src/serve/mod.rs", prose).is_empty());
        // A justified allow still works.
        let allowed = "fn f() {\n    // xtask-allow: stats-sink — pre-socket bind failure has no sink yet.\n    eprintln!(\"boot\");\n}\n";
        assert!(check_snippet("crates/manymap/src/serve/server.rs", allowed).is_empty());
    }

    #[test]
    fn lock_order_inversion_is_flagged() {
        let src = "fn f(s: &S) {\n    let a = s.left.lock();\n    let b = s.right.lock();\n    drop(b);\n    drop(a);\n}\nfn g(s: &S) {\n    let b = s.right.lock();\n    let a = s.left.lock();\n    drop(a);\n    drop(b);\n}\n";
        let v = check_snippet("crates/a/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "lock-order");
        assert!(v[0].message.contains("left"), "{}", v[0].message);
        assert!(v[0].message.contains("right"), "{}", v[0].message);
        // The same source in a test file or outside src/ is exempt.
        assert!(check_snippet("crates/a/tests/t.rs", src).is_empty());
    }

    #[test]
    fn lock_order_consistent_order_is_clean() {
        let src = "fn f(s: &S) {\n    let a = s.left.lock();\n    let b = s.right.lock();\n    drop(b);\n    drop(a);\n}\nfn g(s: &S) {\n    let a = s.left.lock();\n    let b = s.right.lock();\n}\n";
        assert!(check_snippet("crates/a/src/lib.rs", src).is_empty());
    }

    #[test]
    fn lock_order_release_ends_the_hold() {
        // `drop(a)` before the second lock: never held together.
        let dropped = "fn f(s: &S) {\n    let a = s.left.lock();\n    drop(a);\n    let b = s.right.lock();\n}\nfn g(s: &S) {\n    let b = s.right.lock();\n    drop(b);\n    let a = s.left.lock();\n}\n";
        assert!(check_snippet("crates/a/src/lib.rs", dropped).is_empty());
        // Block scope ends the hold the same way.
        let scoped = "fn f(s: &S) {\n    {\n        let a = s.left.lock();\n    }\n    let b = s.right.lock();\n}\nfn g(s: &S) {\n    {\n        let b = s.right.lock();\n    }\n    let a = s.left.lock();\n}\n";
        assert!(check_snippet("crates/a/src/lib.rs", scoped).is_empty());
    }

    #[test]
    fn lock_order_sees_lock_unpoisoned_and_temporaries() {
        // Helper idiom on one side, a same-statement temporary on the other.
        let src = "fn f(s: &S) {\n    let a = lock_unpoisoned(&s.left);\n    s.right.lock().x = 1;\n}\nfn g(s: &S) {\n    let b = lock_unpoisoned(&s.right);\n    s.left.lock().x = 1;\n}\n";
        let v = check_snippet("crates/a/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "lock-order");
    }

    #[test]
    fn lock_order_respects_justified_allow() {
        let src = "fn f(s: &S) {\n    let a = s.left.lock();\n    let b = s.right.lock();\n}\nfn g(s: &S) {\n    let b = s.right.lock();\n    // xtask-allow: lock-order — g is only ever called with f's locks released.\n    let a = s.left.lock();\n}\n";
        assert!(check_snippet("crates/a/src/lib.rs", src).is_empty());
    }

    #[test]
    fn condvar_wait_outside_loop_is_flagged() {
        let iffy = "fn f(cv: &Condvar, m: &Mutex<bool>) {\n    let mut g = m.lock();\n    if !*g {\n        g = cv.wait(g);\n    }\n}\n";
        let v = check_snippet("crates/a/src/lib.rs", iffy);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "condvar-wait-loop");
        assert_eq!(v[0].line, 4);
        // Test code and non-src files are exempt.
        assert!(check_snippet("crates/a/tests/t.rs", iffy).is_empty());
    }

    #[test]
    fn condvar_wait_inside_loop_is_clean() {
        let looped = "fn f(cv: &Condvar, m: &Mutex<bool>) {\n    let mut g = m.lock();\n    while !*g {\n        g = cv.wait(g);\n    }\n}\n";
        assert!(check_snippet("crates/a/src/lib.rs", looped).is_empty());
        let timeout = "fn f(cv: &Condvar, m: &Mutex<bool>) {\n    let mut g = m.lock();\n    loop {\n        let (g2, t) = cv.wait_timeout(g, d);\n        g = g2;\n        if t.timed_out() { break; }\n    }\n}\n";
        assert!(check_snippet("crates/a/src/lib.rs", timeout).is_empty());
        let helper = "fn f() {\n    loop {\n        g = wait_unpoisoned(&cv, g);\n    }\n}\n";
        assert!(check_snippet("crates/a/src/lib.rs", helper).is_empty());
    }

    #[test]
    fn condvar_wait_non_condvar_waits_are_exempt() {
        // `Child::wait()` takes no guard.
        let child = "fn f(c: &mut Child) {\n    let st = c.wait();\n}\n";
        assert!(check_snippet("crates/a/src/lib.rs", child).is_empty());
        // `wait_while` re-checks the predicate internally.
        let wait_while =
            "fn f(cv: &Condvar, g: G) {\n    let g = cv.wait_while(g, |s| !s.ready);\n}\n";
        assert!(check_snippet("crates/a/src/lib.rs", wait_while).is_empty());
        // The helper's own definition is not a call site.
        let def = "pub fn wait_unpoisoned<'a, T>(cv: &Condvar, g: Guard<'a, T>) -> Guard<'a, T> {\n    f(g)\n}\n";
        assert!(check_snippet("crates/a/src/lib.rs", def).is_empty());
        // An `impl .. for ..` block is not a loop.
        let imp =
            "impl Waiter for W {\n    fn go(&self) {\n        let g = self.cv.wait(g);\n    }\n}\n";
        let v = check_snippet("crates/a/src/lib.rs", imp);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn scratch_variant_rule_spots_missing_pair() {
        let files = vec![(
            PathBuf::from("crates/mmm-align/src/newkernel.rs"),
            scan("pub fn align_new(t: &[u8]) {}\npub fn align_old(t: &[u8]) {}\npub fn align_old_with_scratch(t: &[u8]) {}\n"),
        )];
        let mut out = Vec::new();
        rule_scratch_variant(&files, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("align_new"));
    }
}
