//! The differential kernel oracle.
//!
//! Runs every kernel variant the CPU supports — {minimap2, manymap} layout ×
//! {scalar, SSE, AVX2, AVX-512} — over a seeded stream of random sequence
//! pairs and diffs them against the scalar manymap gold: scores, end cells,
//! CIGARs, and cell counts must agree *exactly* (the Eq. 3 ↔ Eq. 4 layouts
//! compute the same recurrence, and every SIMD width must be bit-compatible
//! with scalar). Layout/dependency bugs in these kernels are silent
//! wrong-answer bugs, not crashes — this is the harness that makes them
//! loud.
//!
//! The oracle also audits the PR-1 zero-allocation contract: each engine
//! keeps one scratch arena across the whole stream, and replaying the
//! stream against the warmed arena must leave its high-water mark
//! (`AlignScratch::heap_bytes`) exactly unchanged — any growth on the second
//! pass means some input shape still allocates in the hot path.
//!
//! A third pass replays the stream through the batched `AlignBackend` seam
//! (mmm-exec): the CPU SIMD session, the simulated GPU/SIMT session, and a
//! gpu-sim session on a shrunken device that forces part of the stream
//! across the oversized-pair fallback boundary — all must return the scalar
//! gold bit-for-bit, in job order.

use mmm_align::{AlignMode, AlignResult, AlignScratch, Engine, Layout, Scoring, Width};
use mmm_exec::{prepare, AlignJob, BackendKind, BackendOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lane-boundary lengths every run must cover (the off-by-one surface of
/// the 16/32/64-lane kernels), before the random sizes start.
const EDGE_LENS: [usize; 10] = [1, 2, 15, 16, 17, 31, 32, 33, 63, 65];

struct Case {
    target: Vec<u8>,
    query: Vec<u8>,
    mode: AlignMode,
}

fn random_seq(rng: &mut StdRng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.random_range(0u32..4) as u8).collect()
}

/// A query derived from the target by point edits — realistic long-read
/// noise, which exercises match/mismatch/gap paths far more evenly than an
/// unrelated random pair.
fn mutate(rng: &mut StdRng, target: &[u8]) -> Vec<u8> {
    let mut q = Vec::with_capacity(target.len() + 8);
    for &b in target {
        let roll: f64 = rng.random();
        if roll < 0.05 {
            q.push(rng.random_range(0u32..4) as u8); // substitution
        } else if roll < 0.08 {
            continue; // deletion
        } else if roll < 0.11 {
            q.push(b);
            q.push(rng.random_range(0u32..4) as u8); // insertion
        } else {
            q.push(b);
        }
    }
    if q.is_empty() {
        q.push(rng.random_range(0u32..4) as u8);
    }
    q
}

fn make_cases(cases: usize, seed: u64) -> Vec<Case> {
    const MODES: [AlignMode; 4] = [
        AlignMode::Global,
        AlignMode::SemiGlobal,
        AlignMode::TargetSuffixFree,
        AlignMode::QuerySuffixFree,
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(cases);
    for i in 0..cases {
        let tlen = if i < EDGE_LENS.len() {
            EDGE_LENS[i]
        } else {
            rng.random_range(1usize..160)
        };
        let target = random_seq(&mut rng, tlen);
        let query = if rng.random_bool(0.75) {
            mutate(&mut rng, &target)
        } else {
            let qlen = rng.random_range(1usize..160);
            random_seq(&mut rng, qlen)
        };
        out.push(Case {
            target,
            query,
            mode: MODES[i % MODES.len()],
        });
    }
    out
}

fn describe(i: usize, case: &Case, engine: Engine) -> String {
    format!(
        "case {i} ({:?}, |T|={}, |Q|={}) on {}",
        case.mode,
        case.target.len(),
        case.query.len(),
        engine.label()
    )
}

fn diff(i: usize, case: &Case, engine: Engine, got: &AlignResult, want: &AlignResult) -> String {
    format!(
        "{}: differs from scalar manymap gold\n  gold: score={} end=({},{}) cigar={:?}\n  got:  score={} end=({},{}) cigar={:?}",
        describe(i, case, engine),
        want.score,
        want.end_i,
        want.end_j,
        want.cigar.as_ref().map(|c| c.to_string()),
        got.score,
        got.end_i,
        got.end_j,
        got.cigar.as_ref().map(|c| c.to_string()),
    )
}

/// Run the oracle. Returns a one-line summary on success and a full
/// reproduction recipe (case index, seed, engine) on the first divergence.
pub fn run(cases: usize, seed: u64) -> Result<String, String> {
    let stream = make_cases(cases, seed);
    let engines: Vec<Engine> = Engine::all()
        .into_iter()
        .filter(Engine::is_available)
        .collect();
    let gold_engine = Engine::new(Layout::Manymap, Width::Scalar);
    let sc = Scoring::MAP_ONT;

    // Pass 1: differential check, one persistent scratch per engine.
    let mut scratches: Vec<AlignScratch> = engines.iter().map(|_| AlignScratch::new()).collect();
    let mut golds: Vec<AlignResult> = Vec::with_capacity(stream.len());
    for (i, case) in stream.iter().enumerate() {
        let gold = gold_engine.align(&case.target, &case.query, &sc, case.mode, true);
        for (engine, scratch) in engines.iter().zip(scratches.iter_mut()) {
            let got =
                engine.align_with_scratch(&case.target, &case.query, &sc, case.mode, true, scratch);
            if got != gold {
                return Err(diff(i, case, *engine, &got, &gold));
            }
            // Score-only kernels take a different code path; their score
            // must match the with-path run.
            let score_only = engine.align_with_scratch(
                &case.target,
                &case.query,
                &sc,
                case.mode,
                false,
                scratch,
            );
            if score_only.score != gold.score {
                return Err(format!(
                    "{}: score-only path disagrees (got {}, want {})",
                    describe(i, case, *engine),
                    score_only.score,
                    gold.score
                ));
            }
        }
        golds.push(gold);
    }

    // Pass 2: replay against the warmed arenas — results must be identical
    // (scratch reuse is observationally pure), and replaying the identical
    // stream must leave `heap_bytes` exactly where pass 1 left it. The
    // comparison is end-of-stream to end-of-stream, not per-case: the
    // direction matrix reports its *current* size (it is re-sized per case),
    // so only the stream-end snapshots are comparable — and the linear
    // buffers report capacity, which is grow-only, so any hot-path
    // allocation during the replay shows up as end-state growth.
    let high_water: Vec<usize> = scratches.iter().map(AlignScratch::heap_bytes).collect();
    for (i, case) in stream.iter().enumerate() {
        for (engine, scratch) in engines.iter().zip(scratches.iter_mut()) {
            let got =
                engine.align_with_scratch(&case.target, &case.query, &sc, case.mode, true, scratch);
            if got != golds[i] {
                return Err(format!(
                    "{}: replay with a warmed scratch changed the result",
                    describe(i, case, *engine)
                ));
            }
        }
    }
    for ((engine, scratch), hw) in engines.iter().zip(&scratches).zip(&high_water) {
        let now = scratch.heap_bytes();
        if now != *hw {
            return Err(format!(
                "{}: scratch footprint moved across a full replay ({hw} -> {now} bytes) — \
                 the zero-allocation steady state is broken",
                engine.label()
            ));
        }
    }

    // Pass 3: the same stream through the batched `AlignBackend` seam.
    // Every backend session must hand back results bit-identical to the
    // scalar gold, per job, in job order — including the gpu-sim session on
    // a shrunken device, where part of the stream crosses the
    // oversized-pair boundary and is routed through the CPU fallback while
    // the rest stays on-device.
    let backend_note = backend_crosscheck(&stream, &golds, &sc)?;

    let labels: Vec<String> = engines
        .iter()
        .zip(&high_water)
        .map(|(e, hw)| format!("{} ({hw} B)", e.label()))
        .collect();
    Ok(format!(
        "{} cases x {} engines agree with scalar manymap gold; steady-state scratch: {}; backends: {}",
        stream.len(),
        engines.len(),
        labels.join(", "),
        backend_note
    ))
}

/// Device memory for the shrunken gpu-sim session: small enough that the
/// larger with-path pairs in the stream overflow it (routing them to the
/// CPU fallback), large enough that the lane-edge cases still fit
/// on-device — so one batch exercises both sides of the boundary.
const TINY_DEVICE_MEM: u64 = 16_384;

fn backend_crosscheck(
    stream: &[Case],
    golds: &[AlignResult],
    sc: &Scoring,
) -> Result<String, String> {
    let jobs = || -> Vec<AlignJob> {
        stream
            .iter()
            .map(|c| AlignJob {
                target: c.target.clone(),
                query: c.query.clone(),
                mode: c.mode,
                with_path: true,
            })
            .collect()
    };
    let mut opts = BackendOptions::new(*sc);
    opts.threads = 2;
    let sessions: [(&str, BackendKind, Option<u64>); 3] = [
        ("cpu", BackendKind::Cpu, None),
        ("gpu-sim", BackendKind::GpuSim, None),
        ("gpu-sim/tiny", BackendKind::GpuSim, Some(TINY_DEVICE_MEM)),
    ];
    let mut notes = Vec::new();
    for (label, kind, device_mem) in sessions {
        let mut opts = opts.clone();
        opts.device_mem = device_mem;
        let backend =
            prepare(kind, &opts).map_err(|e| format!("backend {label}: prepare failed: {e}"))?;
        let (results, stats) = backend
            .submit(jobs())
            .map_err(|e| format!("backend {label}: submit failed: {e}"))?;
        if results.len() != stream.len() {
            return Err(format!(
                "backend {label}: {} results for {} jobs",
                results.len(),
                stream.len()
            ));
        }
        for (i, (got, want)) in results.iter().zip(golds).enumerate() {
            if got != want {
                return Err(format!(
                    "backend {label}, case {i} ({:?}, |T|={}, |Q|={}): diverges from scalar gold\n  \
                     gold: score={} end=({},{})\n  got:  score={} end=({},{})",
                    stream[i].mode,
                    stream[i].target.len(),
                    stream[i].query.len(),
                    want.score,
                    want.end_i,
                    want.end_j,
                    got.score,
                    got.end_i,
                    got.end_j,
                ));
            }
        }
        if device_mem.is_some() {
            // The shrunken device must actually straddle the boundary:
            // some jobs routed to the CPU fallback, some still on-device.
            if stats.fallbacks == 0 {
                return Err(format!(
                    "backend {label}: shrunken device produced no CPU fallbacks — \
                     the oversized-pair boundary was not exercised"
                ));
            }
            if stats.fallbacks >= stats.jobs {
                return Err(format!(
                    "backend {label}: every job fell back ({} of {}) — \
                     nothing ran on-device",
                    stats.fallbacks, stats.jobs
                ));
            }
        }
        notes.push(format!("{label} ok ({} fallbacks)", stats.fallbacks));
    }
    notes.push(scheduled_crosscheck(&jobs(), golds, sc)?);
    Ok(notes.join(", "))
}

/// The same stream through the length-binned scheduler (DESIGN.md §11):
/// a supervised gpu-sim session on the shrunken device, dispatched in
/// binned batches — including a seeded adversarial permutation of the
/// batch order — must scatter outcomes back bit-identical to the scalar
/// gold. This is the scheduler's ordering guarantee, enforced on the same
/// oracle stream the engines answer for.
fn scheduled_crosscheck(
    jobs: &[AlignJob],
    golds: &[AlignResult],
    sc: &Scoring,
) -> Result<String, String> {
    use mmm_exec::{prepare_supervised, JobOutcome, SchedConfig, SchedMode, SupervisorConfig};
    let mut opts = BackendOptions::new(*sc);
    opts.threads = 2;
    opts.device_mem = Some(TINY_DEVICE_MEM);
    let sup = prepare_supervised(BackendKind::GpuSim, &opts, SupervisorConfig::default())
        .map_err(|e| format!("scheduled crosscheck: prepare failed: {e}"))?;
    let mut host_routed = 0u64;
    for permute_seed in [None, Some(0xAC1E), Some(7)] {
        let cfg = SchedConfig {
            mode: SchedMode::Bins,
            max_batch_jobs: 8,
            permute_seed,
            ..SchedConfig::default()
        };
        let (outcomes, stats) = sup
            .submit_scheduled(jobs.to_vec(), &cfg)
            .map_err(|e| format!("scheduled crosscheck (seed {permute_seed:?}): {e}"))?;
        if outcomes.len() != golds.len() {
            return Err(format!(
                "scheduled crosscheck (seed {permute_seed:?}): {} outcomes for {} jobs",
                outcomes.len(),
                golds.len()
            ));
        }
        for (i, (o, want)) in outcomes.iter().zip(golds).enumerate() {
            match o {
                JobOutcome::Done(got) if got == want => {}
                JobOutcome::Done(got) => {
                    return Err(format!(
                        "scheduled crosscheck (seed {permute_seed:?}), case {i}: diverges \
                         from scalar gold (score {} vs {})",
                        got.score, want.score
                    ));
                }
                JobOutcome::Quarantined { reason } => {
                    return Err(format!(
                        "scheduled crosscheck (seed {permute_seed:?}), case {i}: \
                         quarantined on a clean run: {reason}"
                    ));
                }
            }
        }
        if stats.sched_batches == 0 {
            return Err("scheduled crosscheck: bins mode produced no binned batches".into());
        }
        host_routed = stats.sched_host_jobs;
    }
    if host_routed == 0 {
        return Err(
            "scheduled crosscheck: shrunken device routed nothing to the host — \
             the pre-batch routing path was not exercised"
                .into(),
        );
    }
    Ok(format!("scheduled ok ({host_routed} host-routed)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_passes_on_this_machine() {
        if let Err(e) = run(24, 0x5EED) {
            panic!("oracle failed: {e}");
        }
    }

    #[test]
    fn case_stream_is_deterministic() {
        let a = make_cases(12, 7);
        let b = make_cases(12, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.target, y.target);
            assert_eq!(x.query, y.query);
        }
    }
}
