//! A minimal Rust surface lexer for the custom lints.
//!
//! The lints in [`crate::lints`] need to tell *code* apart from *comments*
//! and *string/char literals* — nothing more. This module scans a source
//! file once and produces two parallel per-line views:
//!
//! * `code`: the source with comment text and literal contents blanked to
//!   spaces (quote/delimiter characters are kept so token shapes survive);
//! * `comment`: only the comment text (line and block comments, including
//!   doc comments), everything else blanked.
//!
//! Both views preserve line structure exactly, so `views[i]` always
//! describes source line `i + 1` and lint findings carry real line numbers.
//!
//! The scanner understands nested block comments, raw strings with any hash
//! count (`r#".."#`, `br##".."##`), byte strings, escapes in string/char
//! literals, and the char-literal vs. lifetime ambiguity (`'a'` vs. `'a`).
//! It does not attempt full tokenization — that is rustc's job; anything
//! that compiles is scanned faithfully enough for the lint rules.

/// One source line, split into its code part and its comment part.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineView {
    pub code: String,
    pub comment: String,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Normal,
    LineComment,
    /// Nesting depth of `/* */`.
    BlockComment(u32),
    /// Inside `".."` (escapes active).
    Str,
    /// Inside `r##".."##` with the given hash count (no escapes).
    RawStr(u32),
    /// Inside `'..'` (escapes active).
    CharLit,
}

/// Is this a character-literal opener rather than a lifetime?
///
/// `chars[i]` is a `'`. A char literal is `'x'`, `'\n'`, `'\u{..}'`; a
/// lifetime is `'ident` with no closing quote right after one identifier
/// character (`'a>` / `'a,` / `'a ` / `'static`).
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        None => false,
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
    }
}

/// How many `#` follow position `i`, for raw-string delimiters.
fn hashes_at(chars: &[char], i: usize) -> u32 {
    let mut n = 0;
    while chars.get(i + n as usize) == Some(&'#') {
        n += 1;
    }
    n
}

/// Scan a whole file into per-line code/comment views.
pub fn scan(src: &str) -> Vec<LineView> {
    let chars: Vec<char> = src.chars().collect();
    let mut views = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Normal;
    let mut i = 0;

    // Push `c` to one view and pad the other, keeping columns aligned.
    macro_rules! emit {
        (code $c:expr) => {{
            code.push($c);
            comment.push(' ');
        }};
        (comment $c:expr) => {{
            code.push(' ');
            comment.push($c);
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // A newline always ends the physical line; line comments end
            // here too, everything else carries over.
            if state == State::LineComment {
                state = State::Normal;
            }
            views.push(LineView {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
            });
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    emit!(comment '/');
                    emit!(comment '/');
                    i += 2;
                    state = State::LineComment;
                } else if c == '/' && next == Some('*') {
                    emit!(comment '/');
                    emit!(comment '*');
                    i += 2;
                    state = State::BlockComment(1);
                } else if c == '"' {
                    emit!(code '"');
                    i += 1;
                    state = State::Str;
                } else if c == 'r' && (next == Some('"') || next == Some('#')) {
                    // Possible raw string r".." / r#".."#; only commit when
                    // the hashes are followed by a quote (else it's just an
                    // identifier like `r#keyword` usage or a lone `r`).
                    let h = hashes_at(&chars, i + 1);
                    if chars.get(i + 1 + h as usize) == Some(&'"') {
                        for _ in 0..(h as usize + 2) {
                            emit!(code chars[i]);
                            i += 1;
                        }
                        state = State::RawStr(h);
                    } else {
                        emit!(code c);
                        i += 1;
                    }
                } else if c == 'b' && next == Some('"') {
                    emit!(code 'b');
                    emit!(code '"');
                    i += 2;
                    state = State::Str;
                } else if c == 'b'
                    && next == Some('r')
                    && (chars.get(i + 2) == Some(&'"') || chars.get(i + 2) == Some(&'#'))
                {
                    let h = hashes_at(&chars, i + 2);
                    if chars.get(i + 2 + h as usize) == Some(&'"') {
                        for _ in 0..(h as usize + 3) {
                            emit!(code chars[i]);
                            i += 1;
                        }
                        state = State::RawStr(h);
                    } else {
                        emit!(code c);
                        i += 1;
                    }
                } else if c == 'b' && next == Some('\'') {
                    emit!(code 'b');
                    emit!(code '\'');
                    i += 2;
                    state = State::CharLit;
                } else if c == '\'' {
                    if is_char_literal(&chars, i) {
                        emit!(code '\'');
                        i += 1;
                        state = State::CharLit;
                    } else {
                        emit!(code '\''); // lifetime tick stays code
                        i += 1;
                    }
                } else {
                    emit!(code c);
                    i += 1;
                }
            }
            State::LineComment => {
                emit!(comment c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    emit!(comment '*');
                    emit!(comment '/');
                    i += 2;
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                } else if c == '/' && next == Some('*') {
                    emit!(comment '/');
                    emit!(comment '*');
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    emit!(comment c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    emit!(code ' ');
                    if chars.get(i + 1).is_some() && chars[i + 1] != '\n' {
                        emit!(code ' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    emit!(code '"');
                    i += 1;
                    state = State::Normal;
                } else {
                    emit!(code ' ');
                    i += 1;
                }
            }
            State::RawStr(h) => {
                if c == '"' && hashes_at(&chars, i + 1) >= h {
                    emit!(code '"');
                    i += 1;
                    for _ in 0..h {
                        emit!(code '#');
                        i += 1;
                    }
                    state = State::Normal;
                } else {
                    emit!(code ' ');
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    emit!(code ' ');
                    if chars.get(i + 1).is_some() && chars[i + 1] != '\n' {
                        emit!(code ' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    emit!(code '\'');
                    i += 1;
                    state = State::Normal;
                } else {
                    emit!(code ' ');
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        views.push(LineView { code, comment });
    }
    views
}

/// True when `needle` occurs in `hay` delimited by non-identifier chars —
/// `unsafe` matches in `unsafe {` but not in `unsafely` or `is_unsafe`.
pub fn has_word(hay: &str, needle: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut start = 0;
    while let Some(pos) = hay[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0 || !hay[..at].chars().next_back().is_some_and(is_ident);
        let after = at + needle.len();
        let after_ok = after >= hay.len() || !hay[after..].chars().next().is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len().max(1);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> Vec<String> {
        scan(src).into_iter().map(|v| v.code).collect()
    }

    fn comment_of(src: &str) -> Vec<String> {
        scan(src).into_iter().map(|v| v.comment).collect()
    }

    #[test]
    fn line_comments_split_out() {
        let v = scan("let x = 1; // SAFETY: fine\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].code.contains("let x = 1;"));
        assert!(!v[0].code.contains("SAFETY"));
        assert!(v[0].comment.contains("SAFETY: fine"));
    }

    #[test]
    fn strings_are_blanked_in_code() {
        let c = code_of("let s = \"unsafe { } // not a comment\";\n");
        assert!(!c[0].contains("unsafe"));
        assert!(!c[0].contains("//"));
        assert!(c[0].contains("let s = \""));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let c = code_of("let s = \"a\\\"unsafe\"; unsafe {}\n");
        assert!(!c[0].contains("a\\"));
        assert!(c[0].contains("unsafe {}"), "{}", c[0]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let c = code_of("let s = r#\"unsafe \" still\"#; transmute()\n");
        assert!(!c[0].contains("unsafe"));
        assert!(c[0].contains("transmute"));
        let c = code_of("let s = br##\"x\"# y\"##; .unwrap()\n");
        assert!(!c[0].contains("x\"# y"));
        assert!(c[0].contains(".unwrap()"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* one /* two */ still */ b\n";
        let c = code_of(src);
        assert!(c[0].contains('a') && c[0].contains('b'));
        assert!(!c[0].contains("still"));
        assert!(comment_of(src)[0].contains("still"));
    }

    #[test]
    fn multiline_block_comment_spans_lines() {
        let src = "x/*\nunsafe\n*/y\n";
        let c = code_of(src);
        assert_eq!(c.len(), 3);
        assert!(!c[1].contains("unsafe"));
        assert!(c[2].contains('y'));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let c = code_of("let a: &'a str = x; let q = 'q'; let n = '\\n';\n");
        // Lifetime survives as code; char literal contents are blanked.
        assert!(c[0].contains("&'a str"));
        assert!(!c[0].contains('q') || !c[0].contains("'q'"));
        let c = code_of("let c = '\"'; unsafe {}\n");
        // A quote inside a char literal must not open a string.
        assert!(c[0].contains("unsafe {}"), "{}", c[0]);
    }

    #[test]
    fn byte_literals() {
        let c = code_of("let b = b\"abc\"; let x = b'z'; keep\n");
        assert!(!c[0].contains("abc"));
        assert!(c[0].contains("keep"));
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("unsafe {", "unsafe"));
        assert!(has_word("x unsafe", "unsafe"));
        assert!(!has_word("unsafely", "unsafe"));
        assert!(!has_word("is_unsafe", "unsafe"));
        assert!(has_word("(unsafe)", "unsafe"));
    }

    #[test]
    fn line_numbers_align() {
        let src = "one\ntwo // c\nthree\n";
        let v = scan(src);
        assert_eq!(v.len(), 3);
        assert!(v[0].code.contains("one"));
        assert!(v[1].code.contains("two") && v[1].comment.contains('c'));
        assert!(v[2].code.contains("three"));
    }
}
