//! `cargo run -p xtask -- verify` — the repo's own static-analysis and
//! soundness gate (see DESIGN.md §8).
//!
//! Sub-passes, each also runnable on its own:
//!
//! 1. `lint` — custom source lints over `crates/` and `shims/` enforcing the
//!    invariants clippy can't: justified `// SAFETY:` comments on every
//!    `unsafe` site, `#[target_feature]` confined behind the dispatch gate,
//!    no `transmute`, raw-pointer arithmetic only in `simd/`/`mmap.rs`, no
//!    `unwrap`/`expect` in non-test lib code, and a `*_with_scratch` variant
//!    for every public kernel.
//! 2. `oracle` — the differential kernel oracle: every available SIMD tier
//!    against the scalar manymap gold, plus the zero-allocation
//!    scratch-arena steady-state check.
//! 3. `fuzz` — the seeded structure-aware protocol fuzzer: hostile
//!    length-prefixed frames (truncated, bit-flipped, oversized, unknown
//!    opcodes, byte soup) against `serve::proto` decoding, asserting typed
//!    errors, no panics, and round-trip identity on valid frames.
//! 4. `miri` — the Miri-clean subset (`cargo +nightly miri test` on
//!    `mmm-align`'s scalar/layout tests, `mmm-pipeline`'s queue tests, and
//!    the `serve::proto` codec; SIMD intrinsics are cfg-gated out under
//!    Miri). Skipped with a notice when the toolchain has no Miri — this
//!    build environment is offline and cannot install components.
//! 5. `interleave` — the loom-lite interleaving checker (with the
//!    happens-before race detector and lock-order detector on) over the
//!    pipeline condvar hand-off, the `BoundedQueue` protocol, the DRR
//!    credit gate, the signal-drain flush, and the watchdog rendezvous.

mod fuzz;
mod lex;
mod lints;
mod oracle;

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    match manifest.parent().and_then(Path::parent) {
        Some(root) => root.to_path_buf(),
        None => PathBuf::from("."),
    }
}

fn run_lints(root: &Path) -> Result<(), String> {
    let violations = lints::run(root)?;
    if violations.is_empty() {
        println!(
            "xtask lint: {} rules clean over crates/ and shims/",
            lints::RULES.len()
        );
        return Ok(());
    }
    for v in &violations {
        eprintln!("{v}");
    }
    Err(format!(
        "{} lint violation(s); suppress a justified exception with \
         `// xtask-allow: <rule> — <why>` (DESIGN.md §8)",
        violations.len()
    ))
}

fn run_oracle(args: &[String]) -> Result<(), String> {
    let mut cases = 48usize;
    let mut seed = 0xC0FFEE_u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = |it: &mut std::slice::Iter<'_, String>| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--cases" => {
                cases = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?
            }
            "--seed" => {
                seed = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            other => return Err(format!("unknown oracle flag {other:?}")),
        }
    }
    let summary = oracle::run(cases, seed)?;
    println!("xtask oracle: {summary}");
    Ok(())
}

fn run_fuzz(args: &[String]) -> Result<(), String> {
    let mut cases = 256u64;
    let mut seed = 0xF2A7_u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let value = |it: &mut std::slice::Iter<'_, String>| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--cases" => {
                cases = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?
            }
            "--seed" => {
                seed = value(&mut it)?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            other => return Err(format!("unknown fuzz flag {other:?}")),
        }
    }
    let summary = fuzz::run(cases, seed)?;
    println!("xtask fuzz: {summary}");
    Ok(())
}

/// Run a cargo subcommand, streaming its output; Err on non-zero exit.
fn cargo(root: &Path, args: &[&str], what: &str) -> Result<(), String> {
    cargo_env(root, args, &[], what)
}

/// Like [`cargo`], with extra environment variables (e.g. `MIRIFLAGS`).
fn cargo_env(root: &Path, args: &[&str], envs: &[(&str, &str)], what: &str) -> Result<(), String> {
    let status = Command::new("cargo")
        .args(args)
        .envs(envs.iter().copied())
        .current_dir(root)
        .status()
        .map_err(|e| format!("spawning cargo for {what}: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("{what} failed (cargo {})", args.join(" ")))
    }
}

fn miri_available() -> bool {
    Command::new("cargo")
        .args(["+nightly", "miri", "--version"])
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

fn run_miri(root: &Path) -> Result<(), String> {
    if !miri_available() {
        println!(
            "xtask miri: `cargo +nightly miri` unavailable (offline toolchain, \
             component not installed) — skipping the Miri subset. The subset \
             still runs wherever Miri exists; nothing else is skipped."
        );
        return Ok(());
    }
    println!(
        "xtask miri: running the Miri-clean subset (mmm-align with SIMD \
         cfg-gated out, mmm-pipeline queue, serve::proto codec)"
    );
    cargo(
        root,
        &["+nightly", "miri", "test", "-p", "mmm-align", "--lib", "-q"],
        "miri subset (mmm-align)",
    )?;
    // The queue tests take real timeouts through `Instant`, which Miri only
    // provides outside isolation.
    cargo_env(
        root,
        &[
            "+nightly",
            "miri",
            "test",
            "-p",
            "mmm-pipeline",
            "--lib",
            "-q",
            "queue",
        ],
        &[("MIRIFLAGS", "-Zmiri-disable-isolation")],
        "miri subset (mmm-pipeline queue)",
    )?;
    cargo(
        root,
        &[
            "+nightly",
            "miri",
            "test",
            "-p",
            "manymap",
            "--lib",
            "-q",
            "serve::proto",
        ],
        "miri subset (serve::proto)",
    )
}

fn run_interleave(root: &Path) -> Result<(), String> {
    println!(
        "xtask interleave: enumerating schedules with loom-lite (race + \
         lock-order detectors on)"
    );
    cargo(
        root,
        &[
            "test",
            "-q",
            "-p",
            "mmm-pipeline",
            "--test",
            "interleavings",
        ],
        "interleaving checker (pipeline hand-off)",
    )?;
    cargo(
        root,
        &[
            "test",
            "-q",
            "-p",
            "mmm-pipeline",
            "--test",
            "queue_interleavings",
        ],
        "interleaving checker (BoundedQueue)",
    )?;
    cargo(
        root,
        &[
            "test",
            "-q",
            "-p",
            "manymap",
            "--test",
            "serve_interleavings",
        ],
        "interleaving checker (DRR credit + signal drain)",
    )?;
    cargo(
        root,
        &[
            "test",
            "-q",
            "-p",
            "mmm-exec",
            "--test",
            "watchdog_interleavings",
        ],
        "interleaving checker (watchdog rendezvous)",
    )?;
    cargo(
        root,
        &["test", "-q", "-p", "loom-lite"],
        "loom-lite self-tests",
    )
}

fn verify(root: &Path) -> Result<(), String> {
    println!("xtask verify: [1/5] source lints");
    run_lints(root)?;
    println!("xtask verify: [2/5] differential kernel oracle");
    run_oracle(&[])?;
    println!("xtask verify: [3/5] protocol fuzzer");
    run_fuzz(&[])?;
    println!("xtask verify: [4/5] Miri subset");
    run_miri(root)?;
    println!("xtask verify: [5/5] interleaving checker");
    run_interleave(root)?;
    println!("xtask verify: all passes clean");
    Ok(())
}

fn print_help() {
    println!(
        "xtask — repo-native verification\n\n\
         USAGE: cargo run -p xtask -- <command>\n\n\
         COMMANDS:\n  \
         verify               run every pass (lint, oracle, fuzz, miri, interleave)\n  \
         lint                 custom source lints (SAFETY comments, unsafe hygiene,\n                       lock order, condvar-wait loops)\n  \
         oracle [--cases N] [--seed S]\n                       differential SIMD oracle vs scalar gold\n  \
         fuzz [--cases N] [--seed S]\n                       hostile-frame fuzzer for the serve wire protocol\n  \
         miri                 Miri-clean subset (skipped if Miri is unavailable)\n  \
         interleave           loom-lite schedule enumeration (pipeline, queue,\n                       DRR credit, signal drain, watchdog)\n  \
         help                 this text"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("verify");
    let root = workspace_root();
    let result = match cmd {
        "verify" => verify(&root),
        "lint" => run_lints(&root),
        "oracle" => run_oracle(&args[1..]),
        "fuzz" => run_fuzz(&args[1..]),
        "miri" => run_miri(&root),
        "interleave" => run_interleave(&root),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?} (try `help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::FAILURE
        }
    }
}
