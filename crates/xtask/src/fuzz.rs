//! Seeded structure-aware fuzzing of the serve wire protocol
//! (`manymap::serve::proto`).
//!
//! The grammar is the length-prefixed frame layout (`u32_le len | u8 op |
//! payload`) and the nested read encoding (`u32 name | u32 seq | u32
//! qual`). Each case builds a *valid* frame and read from the seeded RNG,
//! checks round-trip identity through the real codec, then derives hostile
//! variants — truncations, bit flips, oversized length prefixes, unknown
//! opcodes, trailing garbage, and unstructured byte soup — and feeds them
//! to the decoders under `catch_unwind`. A typed `Err` is the correct
//! answer for hostile input; any panic is a finding.
//!
//! The sweep core is generic over the decoder hooks so a unit test can
//! hand it a deliberately broken decoder (one that trusts the length
//! prefix) and prove the harness catches the panic — the fuzzer's canary,
//! mirroring the broken-variant tests the loom-lite models keep.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

use manymap::serve::proto::{decode_read, encode_read, read_frame, write_frame, Op, MAX_FRAME};

/// splitmix64 — tiny, seedable, and good enough to decorrelate cases.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (`n > 0`).
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn byte(&mut self) -> u8 {
        (self.next() & 0xFF) as u8
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.byte()).collect()
    }
}

/// Every opcode the protocol defines, for valid-frame generation.
const OPS: [Op; 10] = [
    Op::Hello,
    Op::Read,
    Op::End,
    Op::Stats,
    Op::Drain,
    Op::Ok,
    Op::Rec,
    Op::StatsReply,
    Op::Done,
    Op::Err,
];

/// What a finished sweep covered.
#[derive(Debug)]
pub struct Summary {
    pub cases: u64,
    pub mutations: u64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cases round-tripped (frames + reads), {} hostile mutations \
             decoded without a panic",
            self.cases, self.mutations
        )
    }
}

/// Fuzz the real protocol decoders.
pub fn run(cases: u64, seed: u64) -> Result<Summary, String> {
    sweep(
        cases,
        seed,
        &|bytes| {
            let _ = read_frame(&mut &bytes[..]);
        },
        &|payload| {
            let _ = decode_read(payload);
        },
    )
}

/// One hostile variant of a valid input.
fn mutate(rng: &mut Rng, valid: &[u8]) -> (&'static str, Vec<u8>) {
    match rng.below(6) {
        0 => ("truncated", valid[..rng.below(valid.len().max(1))].to_vec()),
        1 => {
            let mut m = valid.to_vec();
            let at = rng.below(m.len().max(1));
            if let Some(b) = m.get_mut(at) {
                *b ^= 1 << rng.below(8);
            }
            ("bit-flipped", m)
        }
        2 => {
            let mut m = valid.to_vec();
            let huge = (MAX_FRAME as u32).saturating_add(1 + (rng.next() as u32 >> 8));
            let n = 4.min(m.len());
            m[..n].copy_from_slice(&huge.to_le_bytes()[..n]);
            ("oversized-length", m)
        }
        3 => {
            let mut m = valid.to_vec();
            if m.len() > 4 {
                m[4] = rng.byte();
            }
            ("opcode-rewritten", m)
        }
        4 => {
            let mut m = valid.to_vec();
            let extra = rng.below(32);
            m.extend(rng.bytes(extra));
            ("trailing-garbage", m)
        }
        _ => {
            let len = rng.below(64);
            ("byte-soup", rng.bytes(len))
        }
    }
}

/// The sweep core. `frame_sink` and `read_sink` receive every hostile
/// input; they must swallow it with a typed error — a panic is a finding.
/// Round-trip identity on the valid inputs is always checked against the
/// *real* codec, independent of the sinks.
pub fn sweep(
    cases: u64,
    seed: u64,
    frame_sink: &dyn Fn(&[u8]),
    read_sink: &dyn Fn(&[u8]),
) -> Result<Summary, String> {
    let mut rng = Rng::new(seed);
    let mut mutations = 0u64;
    for case in 0..cases {
        // Valid frame → wire → identical frame back.
        let op = OPS[rng.below(OPS.len())];
        let payload_len = rng.below(512);
        let payload = rng.bytes(payload_len);
        let mut wire = Vec::new();
        write_frame(&mut wire, op, &payload)
            .map_err(|e| format!("case {case}: write_frame on a valid frame: {e}"))?;
        match read_frame(&mut &wire[..]) {
            Ok(Some(f)) if f.op == op && f.payload == payload => {}
            other => {
                return Err(format!(
                    "case {case}: frame round-trip lost identity (op {op:?}, \
                     {} payload bytes): {other:?}",
                    payload.len()
                ))
            }
        }

        // Valid read → payload → identical fields back.
        let name: String = (0..rng.below(24))
            .map(|_| (b'a' + (rng.below(26) as u8)) as char)
            .collect();
        let seq_len = rng.below(256);
        let seq = rng.bytes(seq_len);
        let qual = if rng.below(2) == 0 {
            Vec::new()
        } else {
            rng.bytes(seq.len())
        };
        let enc = encode_read(&name, &seq, &qual);
        match decode_read(&enc) {
            Ok((n, s, q)) if n == name && s == seq && q == qual => {}
            other => {
                return Err(format!(
                    "case {case}: read round-trip lost identity (name {name:?}, \
                     {} seq bytes): {other:?}",
                    seq.len()
                ))
            }
        }

        // Hostile variants of both corpora through the sinks.
        for _ in 0..4 {
            let (kind, bytes) = mutate(&mut rng, &wire);
            mutations += 1;
            if catch_unwind(AssertUnwindSafe(|| frame_sink(&bytes))).is_err() {
                return Err(finding(case, seed, "frame decoder", kind, &bytes));
            }
            let (kind, bytes) = mutate(&mut rng, &enc);
            mutations += 1;
            if catch_unwind(AssertUnwindSafe(|| read_sink(&bytes))).is_err() {
                return Err(finding(case, seed, "read decoder", kind, &bytes));
            }
        }
    }
    Ok(Summary { cases, mutations })
}

/// A reproducible finding: the case, seed, mutation family, and an input
/// prefix — enough to replay with `xtask fuzz --seed`.
fn finding(case: u64, seed: u64, decoder: &str, kind: &str, bytes: &[u8]) -> String {
    let prefix: Vec<String> = bytes.iter().take(16).map(|b| format!("{b:02x}")).collect();
    format!(
        "{decoder} panicked on {kind} input at case {case} (seed {seed:#x}, \
         {} bytes, prefix {})",
        bytes.len(),
        prefix.join(" ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The real codec survives a deeper sweep than the verify default.
    #[test]
    fn real_codec_survives_the_sweep() {
        let s = run(128, 0xF00D).expect("clean sweep");
        assert_eq!(s.cases, 128);
        assert!(
            s.mutations > 500,
            "mutation corpus too small: {}",
            s.mutations
        );
    }

    /// Canary: a decoder that trusts the length prefix must be caught.
    /// This is the truncated-frame-panic variant the acceptance criteria
    /// name — if the harness stops catching it, the fuzz pass is dead.
    #[test]
    fn harness_catches_a_length_trusting_decoder() {
        let broken = |bytes: &[u8]| {
            let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
            let _payload = &bytes[5..5 + len]; // panics on truncation
        };
        let err = sweep(16, 0x5EED, &broken, &|_| {}).unwrap_err();
        assert!(err.contains("panicked"), "{err}");
        assert!(err.contains("frame decoder"), "{err}");
    }

    /// Determinism: the same seed walks the same corpus.
    #[test]
    fn sweep_is_deterministic_per_seed() {
        let a = run(32, 42).expect("clean");
        let b = run(32, 42).expect("clean");
        assert_eq!(a.mutations, b.mutations);
    }
}
