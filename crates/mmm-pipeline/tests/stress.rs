//! Pipeline stress tests: ordering and completeness under adversarial
//! batch shapes, thread counts and workload skew.

use std::sync::Mutex;

use mmm_pipeline::{par_map_indexed, run_three_thread, run_two_thread, sort_indices_by_len_desc};

fn feeder(batches: Vec<Vec<u64>>) -> impl FnMut() -> Option<Vec<u64>> + Send {
    let mut b = batches;
    b.reverse();
    move || b.pop()
}

#[test]
fn many_tiny_batches_keep_order() {
    // 100 batches of 1 item stress the channel/ordering machinery.
    let input: Vec<Vec<u64>> = (0..100).map(|i| vec![i]).collect();
    let out = Mutex::new(Vec::new());
    let stats = run_three_thread(
        feeder(input),
        |&x| x,
        |_| 1,
        |r| out.lock().unwrap().extend(r),
        4,
        true,
    );
    assert_eq!(stats.batches, 100);
    assert_eq!(out.into_inner().unwrap(), (0..100).collect::<Vec<u64>>());
}

#[test]
fn skewed_work_is_complete_under_both_designs() {
    // Item cost varies 1000×; both pipelines must still emit everything in
    // order.
    let batches: Vec<Vec<u64>> = (0..6)
        .map(|b| (0..50).map(|i| (b * 50 + i) as u64).collect())
        .collect();
    let work = |&x: &u64| {
        // Busy-work proportional to a pseudo-random weight.
        let w = (x * 2654435761) % 1000 + 1;
        let mut acc = 0u64;
        for i in 0..w * 50 {
            acc = acc.wrapping_add(i ^ x);
        }
        (x, acc)
    };
    let expected: Vec<u64> = (0..300).collect();

    let three = {
        let out = Mutex::new(Vec::new());
        run_three_thread(
            feeder(batches.clone()),
            work,
            |&x| (x % 97) as usize,
            |r| out.lock().unwrap().extend(r.into_iter().map(|(x, _)| x)),
            4,
            true,
        );
        out.into_inner().unwrap()
    };
    assert_eq!(three, expected);

    let two = {
        let out = Mutex::new(Vec::new());
        run_two_thread(
            feeder(batches),
            work,
            |r| out.lock().unwrap().extend(r.into_iter().map(|(x, _)| x)),
            4,
        );
        out.into_inner().unwrap()
    };
    assert_eq!(two, expected);
}

#[test]
fn pool_handles_more_threads_than_items() {
    let items = vec![10u32, 20];
    let order = sort_indices_by_len_desc(&items, |&x| x as usize);
    let out = par_map_indexed(&items, &order, 64, |&x| x + 1);
    assert_eq!(out, vec![11, 21]);
}

#[test]
fn stats_account_every_item_exactly_once() {
    let batches: Vec<Vec<u64>> = (0..7).map(|b| vec![b; (b as usize % 3) + 1]).collect();
    let expect_items: usize = batches.iter().map(|b| b.len()).sum();
    let out = Mutex::new(0usize);
    let stats = run_three_thread(
        feeder(batches),
        |&x| x,
        |_| 1,
        |r| *out.lock().unwrap() += r.len(),
        2,
        false,
    );
    assert_eq!(stats.items, expect_items);
    assert_eq!(out.into_inner().unwrap(), expect_items);
    assert!(stats.wall_seconds >= 0.0);
}

#[test]
fn large_single_batch_parallelism() {
    let batch: Vec<u64> = (0..10_000).collect();
    let out = Mutex::new(Vec::new());
    run_three_thread(
        feeder(vec![batch]),
        |&x| x * 2,
        |&x| x as usize,
        |r| out.lock().unwrap().extend(r),
        8,
        true,
    );
    let got = out.into_inner().unwrap();
    assert_eq!(got.len(), 10_000);
    assert!(got.iter().enumerate().all(|(i, &v)| v == i as u64 * 2));
}
