//! Fault-injection suite for the batch pipelines.
//!
//! Drives every degradation path of the fallible pipelines with the
//! adapters from `mmm_pipeline::fault`: a reader erroring mid-run, a worker
//! panicking mid-batch, a writer failing — on both the three-thread
//! (manymap) and two-thread (minimap2) designs. The invariants: a typed
//! error comes back (never a deadlock, never a poisoned mutex), and with a
//! panic handler installed the run completes with the failure counted.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use mmm_pipeline::{
    failing_every, panicking_map, run_two_thread, try_run_three_thread_with_state,
    try_run_two_thread_with_state, DynError, PipelineError,
};

/// A reader producing `n_batches` batches of `batch` consecutive u32s.
fn counting_reader(
    n_batches: usize,
    batch: usize,
) -> impl FnMut() -> Result<Option<Vec<u32>>, DynError> + Send {
    let mut produced = 0usize;
    move || {
        if produced == n_batches {
            return Ok(None);
        }
        let start = (produced * batch) as u32;
        produced += 1;
        Ok(Some((start..start + batch as u32).collect()))
    }
}

fn double(_: &mut (), x: &u32) -> u64 {
    *x as u64 * 2
}

#[test]
fn three_thread_reader_error_aborts_with_typed_error() {
    let written = AtomicUsize::new(0);
    let err = try_run_three_thread_with_state(
        failing_every(counting_reader(100, 8), 3),
        |_| (),
        double,
        |_| 1,
        |rs| {
            written.fetch_add(rs.len(), Ordering::Relaxed);
            Ok(())
        },
        None,
        4,
        false,
    )
    .unwrap_err();
    let PipelineError::Read(e) = err else {
        panic!("wrong variant: {err}");
    };
    assert!(e.to_string().contains("injected reader fault"), "{e}");
    // The two batches read before the fault may or may not have been
    // written; all that matters is the run terminated.
    assert!(written.load(Ordering::Relaxed) <= 16);
}

#[test]
fn three_thread_worker_panic_without_handler_is_typed() {
    let err = try_run_three_thread_with_state(
        counting_reader(4, 16),
        |_| (),
        panicking_map(double, |&x| x == 37),
        |_| 1,
        |_| Ok(()),
        None,
        4,
        false,
    )
    .unwrap_err();
    let PipelineError::WorkerPanic {
        item_index,
        message,
    } = err
    else {
        panic!("wrong variant: {err}");
    };
    // Index is batch-local: 37 is item 5 of the third batch (32..48).
    assert_eq!(item_index, 5);
    assert!(message.contains("injected worker panic"), "{message}");
}

#[test]
fn three_thread_worker_panic_with_handler_degrades_and_counts() {
    let substituted = AtomicUsize::new(0);
    let on_panic = |item: &u32, msg: &str| -> u64 {
        substituted.fetch_add(1, Ordering::Relaxed);
        assert!(msg.contains("injected worker panic"), "{msg}");
        assert_eq!(*item, 37);
        u64::MAX
    };
    let out = Mutex::new(Vec::new());
    let stats = try_run_three_thread_with_state(
        counting_reader(4, 16),
        |_| (),
        panicking_map(double, |&x| x == 37),
        |_| 1,
        |rs| {
            out.lock().unwrap().extend(rs);
            Ok(())
        },
        Some(&on_panic),
        4,
        false,
    )
    .unwrap();
    assert_eq!(stats.items, 64);
    assert_eq!(stats.failed_items, 1);
    assert_eq!(substituted.load(Ordering::Relaxed), 1);
    let out = out.lock().unwrap();
    assert_eq!(out.len(), 64, "every input accounted for");
    assert_eq!(out.iter().filter(|&&r| r == u64::MAX).count(), 1);
    let real_sum: u64 = out.iter().copied().filter(|&r| r != u64::MAX).sum();
    assert_eq!(real_sum, (0..64u64).map(|x| x * 2).sum::<u64>() - 74);
}

#[test]
fn three_thread_writer_error_aborts_with_typed_error() {
    let mut calls = 0usize;
    let err = try_run_three_thread_with_state(
        counting_reader(100, 8),
        |_| (),
        double,
        |_| 1,
        move |_| {
            calls += 1;
            if calls == 2 {
                return Err("disk full".into());
            }
            Ok(())
        },
        None,
        4,
        false,
    )
    .unwrap_err();
    let PipelineError::Write(e) = err else {
        panic!("wrong variant: {err}");
    };
    assert!(e.to_string().contains("disk full"), "{e}");
}

#[test]
fn two_thread_reader_error_does_not_deadlock() {
    let err = try_run_two_thread_with_state(
        failing_every(counting_reader(100, 8), 4),
        |_| (),
        double,
        |_| Ok(()),
        None,
        4,
    )
    .unwrap_err();
    assert!(matches!(err, PipelineError::Read(_)), "{err}");
}

#[test]
fn two_thread_writer_error_does_not_deadlock() {
    // The in-order writer hand-off must not wedge when one slot's write
    // fails: the error aborts the turn-taking, other slots bail out.
    let written = Mutex::new(0usize);
    let err = try_run_two_thread_with_state(
        counting_reader(64, 4),
        |_| (),
        double,
        |_| {
            let mut w = written.lock().unwrap();
            *w += 1;
            if *w == 3 {
                return Err("sink closed".into());
            }
            Ok(())
        },
        None,
        4,
    )
    .unwrap_err();
    let PipelineError::Write(e) = err else {
        panic!("wrong variant: {err}");
    };
    assert!(e.to_string().contains("sink closed"), "{e}");
}

#[test]
fn two_thread_worker_panic_with_handler_completes() {
    let on_panic = |item: &u32, _msg: &str| -> u64 { *item as u64 * 2 };
    let stats = try_run_two_thread_with_state(
        counting_reader(8, 8),
        |_| (),
        panicking_map(double, |&x| x % 13 == 5),
        |_| Ok(()),
        Some(&on_panic),
        4,
    )
    .unwrap();
    assert_eq!(stats.items, 64);
    assert_eq!(
        stats.failed_items,
        (0..64u32).filter(|x| x % 13 == 5).count()
    );
}

#[test]
fn legacy_infallible_api_panics_with_item_context() {
    // The infallible wrappers cannot return an error; a worker panic must
    // surface as a panic naming the offending item, not as a hang.
    let mut batches = vec![(0u32..8).collect::<Vec<_>>()];
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_two_thread(
            move || batches.pop(),
            |x: &u32| {
                if *x == 6 {
                    panic!("kaboom");
                }
                *x
            },
            |_| {},
            2,
        )
    }));
    let msg = *caught
        .expect_err("must panic")
        .downcast::<String>()
        .expect("panic payload");
    assert!(
        msg.contains("worker panicked while processing item 6") && msg.contains("kaboom"),
        "{msg}"
    );
}

/// Stress: repeat the fault scenarios many times to flush out rare
/// interleavings (a deadlock here would hang the suite, not just fail it).
#[test]
fn fault_paths_are_stable_across_repeats() {
    for round in 0..50 {
        let every = 1 + round % 5;
        let r = try_run_three_thread_with_state(
            failing_every(counting_reader(20, 4), every),
            |_| (),
            double,
            |_| 1,
            |_| Ok(()),
            None,
            3,
            true,
        );
        assert!(matches!(r, Err(PipelineError::Read(_))));

        let r = try_run_two_thread_with_state(
            failing_every(counting_reader(20, 4), every),
            |_| (),
            double,
            |_| Ok(()),
            None,
            3,
        );
        assert!(matches!(r, Err(PipelineError::Read(_))));
    }
}
