//! Model-checked interleaving audits of the pipeline synchronization
//! protocols, run with the vendored `loom-lite` cooperative scheduler.
//!
//! The existing fault tests catch timing bugs only when the OS happens to
//! schedule the bad interleaving; these tests *enumerate* the schedules. Each
//! model is a faithful abstraction of one protocol from `mmm-pipeline`:
//!
//! * the minimap2 2-thread design's in-order writer hand-off
//!   (`try_run_two_thread_with_state`): batch ids handed out under the reader
//!   lock, a `writer_turn` condvar serializing output, and an abort flag
//!   raised *under the writer lock* so a slot checking the flag before
//!   parking cannot miss the wakeup;
//! * the persistent worker pool's epoch/check-in barrier (`pool.rs`),
//!   including the per-item panic path (panicking items are recorded and the
//!   worker still checks in) and the state-factory-failure path (a stateless
//!   worker claims nothing but still checks in);
//! * the manymap 3-thread design's bounded-channel stage coupling, abstracted
//!   as two capacity-2 condvar ring buffers (`sync_channel(2)` in the real
//!   code).
//!
//! Two further models are deliberately broken — the historical/near-miss
//! variants of the protocols — and assert that the checker *catches* them, so
//! a regression in the checker itself cannot silently pass the real models.
//!
//! Schedule bounds (documented in DESIGN.md §8): the 2-thread hand-off models
//! are explored exhaustively (`max_preemptions: None`, every schedule), the
//! 3-thread models under a CHESS-style preemption bound of 2, which is known
//! to expose the overwhelming majority of real interleaving bugs while
//! keeping the schedule count polynomial.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use loom_lite::sync::atomic::{AtomicBool, AtomicUsize};
use loom_lite::sync::{Condvar, Mutex};
use loom_lite::{model, thread, Builder, Report};

// ---------------------------------------------------------------------------
// Model 1: the 2-thread pipeline's in-order writer hand-off.
// ---------------------------------------------------------------------------

/// One explored execution of the two-slot pipeline protocol from
/// `try_run_two_thread_with_state`, parameterized over the fault to inject.
///
/// `n_batches` reads succeed, then the source returns end-of-input forever
/// (the real regression surface: EOF must not consume a batch id). When
/// `fail_write_id` is set, writing that batch id fails and the slot triggers
/// the abort protocol. `abort_under_writer_lock` selects between the real
/// protocol (flag raised under the writer lock) and the broken variant the
/// comment in `pipeline.rs` warns about.
fn two_slot_execution(
    n_batches: usize,
    fail_write_id: Option<usize>,
    abort_under_writer_lock: bool,
) {
    // (next id to hand out, batches read so far) — the real code's
    // `Mutex<(read_batch, next_id)>`.
    let reader = Arc::new(Mutex::new((0usize, 0usize)));
    // next batch id the writer will accept — the real code's
    // `Mutex<(write_batch, next_id)>`.
    let writer = Arc::new(Mutex::new(0usize));
    let writer_turn = Arc::new(Condvar::new());
    let compute = Arc::new(Mutex::new(())); // whole-pool exclusivity
    let abort = Arc::new(AtomicBool::new(false));
    let written = Arc::new(Mutex::new(Vec::<usize>::new()));
    let failed = Arc::new(Mutex::new(Option::<usize>::None));

    let mut slots = Vec::new();
    for _slot in 0..2 {
        let reader = Arc::clone(&reader);
        let writer = Arc::clone(&writer);
        let writer_turn = Arc::clone(&writer_turn);
        let compute = Arc::clone(&compute);
        let abort = Arc::clone(&abort);
        let written = Arc::clone(&written);
        let failed = Arc::clone(&failed);
        slots.push(thread::spawn(move || loop {
            if abort.load() {
                break;
            }
            // Load: a batch id is consumed only when a batch was produced,
            // never at end-of-input.
            let my_id = {
                let mut rd = reader.lock();
                if rd.1 < n_batches {
                    rd.1 += 1;
                    let my = rd.0;
                    rd.0 += 1;
                    my
                } else {
                    break; // EOF: no id consumed
                }
            };
            // Compute: exclusive, uses the whole worker pool.
            {
                let _guard = compute.lock();
            }
            // Output in batch order, parking until it is this batch's turn
            // or the run aborts.
            let mut w = writer.lock();
            while !abort.load() && *w != my_id {
                w = writer_turn.wait(w);
            }
            if abort.load() {
                break;
            }
            if fail_write_id == Some(my_id) {
                drop(w);
                // trigger_abort(): record the failure, then raise the flag
                // and wake every parked slot. The real protocol holds the
                // writer lock across store+notify.
                {
                    let mut f = failed.lock();
                    if f.is_none() {
                        *f = Some(my_id);
                    }
                }
                if abort_under_writer_lock {
                    let _w = writer.lock();
                    abort.store(true);
                    writer_turn.notify_all();
                } else {
                    // BROKEN: without the lock, store+notify can land between
                    // another slot's abort check and its wait — lost wakeup.
                    abort.store(true);
                    writer_turn.notify_all();
                }
                break;
            }
            written.lock().push(my_id);
            *w += 1;
            writer_turn.notify_all();
            drop(w);
        }));
    }
    for h in slots {
        h.join();
    }

    // Post-conditions, checked on every explored schedule.
    let written = written.lock().clone();
    match fail_write_id {
        None => {
            assert_eq!(
                written,
                (0..n_batches).collect::<Vec<_>>(),
                "batches must be written exactly once, in order"
            );
            assert!(!abort.load(), "clean runs must not abort");
        }
        Some(bad) => {
            assert_eq!(
                written,
                (0..bad).collect::<Vec<_>>(),
                "exactly the batches before the failing id are written, in order"
            );
            assert!(abort.load(), "a write failure must raise the abort flag");
            assert_eq!(*failed.lock(), Some(bad), "the first failure is recorded");
        }
    }
}

/// The condvar hand-off core in isolation, small enough for *exhaustive*
/// exploration: each slot arrives holding one batch id (the id assignment
/// itself is serialized by the reader lock and covered by the full
/// [`two_slot_execution`] model) and runs the exact writer-turn loop from
/// `try_run_two_thread_with_state` (`while !abort && turn != my_id { wait }`),
/// writes, advances the turn, and notifies. The slot holding id 1 is spawned
/// first, so the "late batch arrives at the writer early" contention is the
/// leftmost schedule, not a corner case. Batch order is asserted
/// structurally: the turn counter only advances in id order.
fn handoff_execution(fail_write_id: Option<usize>, abort_under_writer_lock: bool) {
    let writer = Arc::new(Mutex::new(0usize)); // next id the writer accepts
    let writer_turn = Arc::new(Condvar::new());
    let abort = Arc::new(AtomicBool::new(false));

    let mut slots = Vec::new();
    for my_id in [1usize, 0] {
        let writer = Arc::clone(&writer);
        let writer_turn = Arc::clone(&writer_turn);
        let abort = Arc::clone(&abort);
        slots.push(thread::spawn(move || {
            let mut w = writer.lock();
            while !abort.load() && *w != my_id {
                w = writer_turn.wait(w);
            }
            if abort.load() {
                return;
            }
            if fail_write_id == Some(my_id) {
                drop(w);
                if abort_under_writer_lock {
                    let _w = writer.lock();
                    abort.store(true);
                    writer_turn.notify_all();
                } else {
                    // BROKEN: without the lock, store+notify can land between
                    // another slot's abort check and its wait — lost wakeup.
                    abort.store(true);
                    writer_turn.notify_all();
                }
                return;
            }
            *w += 1;
            writer_turn.notify_all();
        }));
    }
    for h in slots {
        h.join();
    }

    let turn = *writer.lock();
    match fail_write_id {
        None => assert_eq!(turn, 2, "both batches written, in order"),
        Some(bad) => {
            assert_eq!(turn, bad, "exactly the batches before the failure wrote");
            assert!(abort.load(), "a write failure must raise the abort flag");
        }
    }
}

/// Acceptance gate: every 2-thread schedule of the condvar hand-off
/// completes without deadlock or lost wakeup, exhaustively enumerated
/// (`max_preemptions: None`).
#[test]
fn handoff_all_schedules_clean() {
    let report: Report = model(|| handoff_execution(None, true));
    assert!(report.complete, "exploration hit the schedule cap");
    assert!(
        report.schedules >= 100,
        "suspiciously few schedules ({}) — the model lost its concurrency",
        report.schedules
    );
    println!("hand-off: {} schedules, exhaustive", report.schedules);
}

/// A failing write must abort the other slot promptly on every schedule — in
/// particular the slot parked on the writer-turn condvar waiting for a batch
/// id that will now never be written.
#[test]
fn handoff_abort_wakes_parked_writer_on_all_schedules() {
    let report = model(|| handoff_execution(Some(0), true));
    assert!(report.complete, "exploration hit the schedule cap");
    println!("hand-off abort: {} schedules, exhaustive", report.schedules);
}

/// Checker meta-test: the broken abort variant (flag raised *without* the
/// writer lock) admits a schedule where the store+notify land between a
/// parked slot's abort check and its wait. The wakeup is lost, the slot
/// parks forever, and loom-lite must report the deadlock.
#[test]
fn handoff_abort_without_writer_lock_is_caught() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        model(|| handoff_execution(Some(0), false));
    }));
    let msg = match result {
        Ok(_) => panic!("the lost-wakeup abort variant was not detected"),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".into()),
    };
    assert!(
        msg.contains("deadlock"),
        "expected a deadlock report, got: {msg}"
    );
}

/// The full two-slot pipeline (reader ids, compute exclusivity, writer turn,
/// EOF tail) over two batches: clean on every schedule at preemption
/// bound 3. The full model has too many scheduling points for exhaustive
/// exploration; the hand-off core above covers that exhaustively.
#[test]
fn two_slot_pipeline_eof_clean_at_bound() {
    let report = Builder {
        max_preemptions: Some(3),
        ..Builder::default()
    }
    .check(|| two_slot_execution(2, None, true));
    assert!(report.complete, "exploration hit the schedule cap");
    println!(
        "two-slot pipeline + EOF: {} schedules at preemption bound 3",
        report.schedules
    );
}

/// The full two-slot pipeline with a failing write: aborts cleanly (no
/// deadlock, failure recorded) on every schedule at preemption bound 3.
#[test]
fn two_slot_pipeline_abort_clean_at_bound() {
    let report = Builder {
        max_preemptions: Some(3),
        ..Builder::default()
    }
    .check(|| two_slot_execution(2, Some(0), true));
    assert!(report.complete, "exploration hit the schedule cap");
}

// ---------------------------------------------------------------------------
// Model 2: the worker pool's epoch/check-in barrier.
// ---------------------------------------------------------------------------

/// Shared pool state mirroring `pool.rs`'s `Slot`: the epoch stamp, the
/// check-in count, the shutdown flag, the published job (just its length
/// here), and the caught-panic log.
struct SlotState {
    epoch: u64,
    checked_in: usize,
    shutdown: bool,
    job_len: Option<usize>,
    panics: Vec<usize>,
}

/// One explored execution of the pool protocol: a submitter publishes
/// `batches` jobs of `items` items to 2 persistent workers and waits on the
/// check-in barrier for each.
///
/// `worker1_stateless` models a state factory that panicked: the worker must
/// claim nothing yet still check in every epoch. `panic_item` models a `map`
/// panic on that item index: the claiming worker records it and moves on
/// (the real code's per-item `catch_unwind` + state rebuild), and the barrier
/// must still release the submitter. `broken_skip_checkin_on_panic` is the
/// near-miss variant where the panicking worker forgets to check in.
fn pool_execution(
    batches: usize,
    items: usize,
    worker1_stateless: bool,
    panic_item: Option<usize>,
    broken_skip_checkin_on_panic: bool,
) {
    const THREADS: usize = 2;
    let slot = Arc::new(Mutex::new(SlotState {
        epoch: 0,
        checked_in: THREADS, // pre-batch steady state: nobody owes a check-in
        shutdown: false,
        job_len: None,
        panics: Vec::new(),
    }));
    let work_cv = Arc::new(Condvar::new());
    let done_cv = Arc::new(Condvar::new());
    let next = Arc::new(AtomicUsize::new(0));
    let results = Arc::new(Mutex::new(Vec::<Option<usize>>::new()));

    let mut workers = Vec::new();
    for w in 0..THREADS {
        let slot = Arc::clone(&slot);
        let work_cv = Arc::clone(&work_cv);
        let done_cv = Arc::clone(&done_cv);
        let next = Arc::clone(&next);
        let results = Arc::clone(&results);
        workers.push(thread::spawn(move || {
            // `make_state` ran once at spawn; `None` = the factory panicked.
            let mut state = if w == 1 && worker1_stateless {
                None
            } else {
                Some(())
            };
            let mut seen_epoch = 0u64;
            loop {
                // Wait for a fresh epoch (or shutdown) and copy its job.
                let len = {
                    let mut g = slot.lock();
                    loop {
                        if g.shutdown {
                            return;
                        }
                        if g.epoch != seen_epoch {
                            seen_epoch = g.epoch;
                            if let Some(len) = g.job_len {
                                break len;
                            }
                        }
                        g = work_cv.wait(g);
                    }
                };
                // Drain the claim counter with disjoint indices.
                let mut owes_checkin = true;
                while state.is_some() {
                    let k = next.fetch_add(1);
                    if k >= len {
                        break;
                    }
                    if panic_item == Some(k) {
                        // `map` panicked on item k: record it, rebuild state,
                        // keep draining — the item's slot stays `None`.
                        slot.lock().panics.push(k);
                        state = Some(());
                        if broken_skip_checkin_on_panic {
                            // BROKEN: bail without checking in; the submitter
                            // waits for this worker forever.
                            owes_checkin = false;
                            break;
                        }
                    } else {
                        results.lock()[k] = Some(k * 2);
                    }
                }
                // Check in (the real code does this via a drop guard so it
                // also fires while unwinding).
                if owes_checkin {
                    let mut g = slot.lock();
                    g.checked_in += 1;
                    if g.checked_in == THREADS {
                        done_cv.notify_all();
                    }
                } else {
                    return;
                }
            }
        }));
    }

    // Submitter (the pipeline's compute stage).
    for _ in 0..batches {
        results.lock().clear();
        for _ in 0..items {
            results.lock().push(None);
        }
        next.store(0);
        {
            let mut g = slot.lock();
            g.epoch += 1;
            g.checked_in = 0;
            g.panics.clear();
            g.job_len = Some(items);
            work_cv.notify_all();
        }
        // Check-in barrier: only after it may the job borrows be released.
        let panics = {
            let mut g = slot.lock();
            while g.checked_in != THREADS {
                g = done_cv.wait(g);
            }
            g.job_len = None;
            std::mem::take(&mut g.panics)
        };
        // Barrier post-conditions per batch.
        let res = results.lock().clone();
        for (i, r) in res.iter().enumerate() {
            if panic_item == Some(i) {
                assert!(r.is_none(), "panicked item {i} must have no result");
                assert!(panics.contains(&i), "panicked item {i} must be recorded");
            } else {
                assert_eq!(*r, Some(i * 2), "item {i} processed exactly once");
            }
        }
    }
    {
        let mut g = slot.lock();
        g.shutdown = true;
        work_cv.notify_all();
    }
    for h in workers {
        h.join();
    }
}

/// The epoch/check-in barrier releases the submitter on every schedule, with
/// every item processed exactly once — the property that makes the pool's
/// lifetime-erased job pointers sound.
#[test]
fn pool_barrier_all_schedules_clean() {
    let report = Builder {
        max_preemptions: Some(2),
        ..Builder::default()
    }
    .check(|| pool_execution(2, 2, false, None, false));
    assert!(report.complete, "exploration hit the schedule cap");
    println!(
        "pool barrier: {} schedules at preemption bound 2",
        report.schedules
    );
}

/// A worker whose state factory panicked claims no items but still checks in:
/// the barrier must release and the other worker must cover the whole batch.
#[test]
fn pool_stateless_worker_never_wedges_the_barrier() {
    let report = Builder {
        max_preemptions: Some(2),
        ..Builder::default()
    }
    .check(|| pool_execution(2, 2, true, None, false));
    assert!(report.complete, "exploration hit the schedule cap");
}

/// A `map` panic is recorded per item and the worker rebuilds and continues;
/// the barrier still releases on every schedule.
#[test]
fn pool_item_panic_still_checks_in() {
    let report = Builder {
        max_preemptions: Some(2),
        ..Builder::default()
    }
    .check(|| pool_execution(1, 3, false, Some(1), false));
    assert!(report.complete, "exploration hit the schedule cap");
}

/// Checker meta-test: the near-miss variant where a panicking worker skips
/// its check-in must be reported — the submitter waits on `done_cv` forever.
#[test]
fn pool_missing_checkin_is_caught() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        Builder {
            max_preemptions: Some(2),
            ..Builder::default()
        }
        .check(|| pool_execution(1, 3, false, Some(1), true));
    }));
    let msg = match result {
        Ok(_) => panic!("the missing check-in was not detected"),
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".into()),
    };
    assert!(
        msg.contains("deadlock"),
        "expected a deadlock report, got: {msg}"
    );
}

// ---------------------------------------------------------------------------
// Model 3: the 3-thread pipeline's bounded-channel coupling.
// ---------------------------------------------------------------------------

/// A condvar-based bounded queue abstracting `std::sync::mpsc::sync_channel`:
/// `send` parks while full, `recv` parks while empty, and closing wakes every
/// parked receiver (`recv` then drains the buffer before reporting
/// disconnect, exactly like `mpsc`).
struct BoundedQueue {
    state: Mutex<(VecDeque<usize>, bool)>, // (buffer, closed)
    not_full: Condvar,
    not_empty: Condvar,
    cap: usize,
}

impl BoundedQueue {
    fn new(cap: usize) -> Self {
        BoundedQueue {
            state: Mutex::new((VecDeque::new(), false)),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            cap,
        }
    }

    /// Returns false when the receiving side is gone.
    fn send(&self, v: usize) -> bool {
        let mut g = self.state.lock();
        while g.0.len() == self.cap && !g.1 {
            g = self.not_full.wait(g);
        }
        if g.1 {
            return false;
        }
        g.0.push_back(v);
        self.not_empty.notify_all();
        true
    }

    fn recv(&self) -> Option<usize> {
        let mut g = self.state.lock();
        loop {
            if let Some(v) = g.0.pop_front() {
                self.not_full.notify_all();
                return Some(v);
            }
            if g.1 {
                return None;
            }
            g = self.not_empty.wait(g);
        }
    }

    fn close(&self) {
        let mut g = self.state.lock();
        g.1 = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// One explored execution of the 3-stage pipeline: reader → compute → writer
/// over two capacity-2 queues, with EOF propagating as channel closure
/// (dropping `in_tx` / `out_tx` in the real code).
fn three_stage_execution(n_batches: usize) {
    let chan_in = Arc::new(BoundedQueue::new(2));
    let chan_out = Arc::new(BoundedQueue::new(2));
    let written = Arc::new(Mutex::new(Vec::<usize>::new()));

    let reader = {
        let chan_in = Arc::clone(&chan_in);
        thread::spawn(move || {
            for b in 0..n_batches {
                if !chan_in.send(b) {
                    break;
                }
            }
            chan_in.close(); // EOF: dropping in_tx closes the channel
        })
    };
    let writer = {
        let chan_out = Arc::clone(&chan_out);
        let written = Arc::clone(&written);
        thread::spawn(move || {
            while let Some(v) = chan_out.recv() {
                written.lock().push(v);
            }
        })
    };
    // Compute stage runs on this thread, like the real pipeline.
    while let Some(b) = chan_in.recv() {
        if !chan_out.send(b * 10) {
            break;
        }
    }
    chan_out.close();
    reader.join();
    writer.join();

    assert_eq!(
        written.lock().clone(),
        (0..n_batches).map(|b| b * 10).collect::<Vec<_>>(),
        "the 3-stage pipeline must deliver every batch, in order"
    );
}

/// The reader/compute/writer coupling delivers every batch in order and
/// shuts down on EOF without deadlock on every schedule at preemption
/// bound 2 (3 threads are beyond exhaustive reach; see DESIGN.md §8).
#[test]
fn three_stage_channels_all_bounded_schedules_clean() {
    let report = Builder {
        max_preemptions: Some(2),
        ..Builder::default()
    }
    .check(|| three_stage_execution(3));
    assert!(report.complete, "exploration hit the schedule cap");
    println!(
        "three-stage channels: {} schedules at preemption bound 2",
        report.schedules
    );
}
