//! Model-checked interleavings of `BoundedQueue`'s two-condvar protocol
//! (`queue.rs`), explored with the vendored `loom-lite` scheduler.
//!
//! The model is a line-for-line port of the production queue onto
//! `loom_lite::sync` primitives: one mutex around `(VecDeque, closed)`, an
//! `items` condvar for consumers and a `space` condvar for producers,
//! `notify_one` after every state change and `notify_all` on close. Every
//! explored schedule also runs under the happens-before race detector and
//! the lock-order detector (loom-lite defaults).
//!
//! Properties checked on every schedule:
//!
//! * **exactly-once delivery** — each pushed item reaches exactly one
//!   consumer, in FIFO order for a single consumer;
//! * **close-wakes-all** — closing wakes every parked producer (typed
//!   `Closed` error handing the item back) and every parked consumer
//!   (`None` after the drain);
//! * **drain-after-close** — items queued before `close` are still popped;
//! * **no lost wakeups / deadlocks** — any schedule that parks a thread
//!   forever fails the model;
//! * **timed pops terminate** — `pop_timed` returns `TimedOut` (not a
//!   deadlock) when nothing arrives, and never times out while an item is
//!   available.
//!
//! Three deliberately broken variants keep the checker honest: an
//! `if`-guarded wait (the condvar-wait-in-loop bug), a `close` that uses
//! `notify_one` (strands all but one parked waiter), and an
//! unsynchronized `RaceCell` ledger (a write-write data race).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use loom_lite::sync::{Condvar, Mutex, RaceCell};
use loom_lite::{model, thread, Builder};

struct Inner {
    items: VecDeque<usize>,
    closed: bool,
}

/// Why a timed pop returned empty-handed (mirrors `queue::PopError`).
#[derive(Debug, PartialEq, Eq)]
enum PopTimed {
    TimedOut,
    Closed,
}

/// The model port of `mmm_pipeline::queue::BoundedQueue<usize>`.
struct ModelQueue {
    inner: Mutex<Inner>,
    items_cv: Condvar,
    space_cv: Condvar,
    capacity: usize,
}

impl ModelQueue {
    fn new(capacity: usize) -> Self {
        ModelQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            items_cv: Condvar::new(),
            space_cv: Condvar::new(),
            capacity,
        }
    }

    /// `BoundedQueue::push`: block while full, fail once closed.
    fn push(&self, item: usize) -> Result<(), usize> {
        let mut g = self.inner.lock();
        loop {
            if g.closed {
                return Err(item);
            }
            if g.items.len() < self.capacity {
                g.items.push_back(item);
                drop(g);
                self.items_cv.notify_one();
                return Ok(());
            }
            g = self.space_cv.wait(g);
        }
    }

    /// `BoundedQueue::pop`: block while empty, `None` once closed+drained.
    fn pop(&self) -> Option<usize> {
        let mut g = self.inner.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                drop(g);
                self.space_cv.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.items_cv.wait(g);
        }
    }

    /// `BoundedQueue::pop_timeout`: one abstract timeout per call.
    fn pop_timed(&self) -> Result<usize, PopTimed> {
        let mut g = self.inner.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                drop(g);
                self.space_cv.notify_one();
                return Ok(item);
            }
            if g.closed {
                return Err(PopTimed::Closed);
            }
            let (g2, timed_out) = self.items_cv.wait_timeout(g, Duration::from_millis(1));
            g = g2;
            if timed_out {
                return Err(PopTimed::TimedOut);
            }
        }
    }

    /// `BoundedQueue::close`: mark closed and wake **every** waiter.
    fn close(&self) {
        self.inner.lock().closed = true;
        self.items_cv.notify_all();
        self.space_cv.notify_all();
    }

    /// Broken variant: the wait is guarded by `if`, not `while`, and the
    /// wakeup is trusted to mean "an item is ready". Any schedule where a
    /// close (or a raced-away item) wakes this consumer without an item
    /// panics — the canary the condvar-wait-in-loop lint exists for.
    fn pop_broken_if_guard(&self) -> Option<usize> {
        let mut g = self.inner.lock();
        if g.items.is_empty() && !g.closed {
            g = self.items_cv.wait(g);
            if g.closed && g.items.is_empty() {
                return None;
            }
            let item = g.items.pop_front().expect("woken without an item");
            drop(g);
            self.space_cv.notify_one();
            return Some(item);
        }
        if let Some(item) = g.items.pop_front() {
            drop(g);
            self.space_cv.notify_one();
            return Some(item);
        }
        None
    }

    /// Broken variant: close wakes only one waiter per condvar. With two
    /// consumers parked, one stays parked forever — a deadlock schedule.
    fn close_broken_notify_one(&self) {
        self.inner.lock().closed = true;
        self.items_cv.notify_one();
        self.space_cv.notify_one();
    }
}

/// Single producer, single consumer, capacity 1: FIFO delivery and
/// drain-after-close on every schedule, explored exhaustively.
#[test]
fn spsc_delivers_in_order_and_drains_after_close() {
    let report = model(|| {
        let q = Arc::new(ModelQueue::new(1));
        let qp = Arc::clone(&q);
        let producer = thread::spawn(move || {
            assert!(qp.push(1).is_ok());
            assert!(qp.push(2).is_ok());
            qp.close();
        });
        let mut got = Vec::new();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        assert_eq!(got, vec![1, 2], "FIFO order lost");
        assert_eq!(q.pop(), None, "closed queue must stay terminal");
        producer.join();
    });
    assert!(report.complete, "exploration truncated: {report:?}");
    assert!(report.schedules > 10, "{report:?}");
}

/// Two producers, two consumers, capacity 1, CHESS preemption bound 1
/// (five threads make bound 2 exceed the schedule budget): every item is
/// delivered exactly once, none invented, none lost.
#[test]
fn mpmc_exactly_once_delivery() {
    let report = Builder {
        max_preemptions: Some(1),
        ..Builder::default()
    }
    .check(|| {
        let q = Arc::new(ModelQueue::new(1));
        let ledger = Arc::new(Mutex::new(Vec::new()));
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let (q, ledger) = (Arc::clone(&q), Arc::clone(&ledger));
            consumers.push(thread::spawn(move || {
                while let Some(v) = q.pop() {
                    ledger.lock().push(v);
                }
            }));
        }
        let mut producers = Vec::new();
        for v in [10, 20] {
            let q = Arc::clone(&q);
            producers.push(thread::spawn(move || {
                assert!(q.push(v).is_ok(), "push raced with a close");
            }));
        }
        for p in producers {
            p.join();
        }
        q.close();
        for c in consumers {
            c.join();
        }
        let mut got = ledger.lock().clone();
        got.sort_unstable();
        assert_eq!(got, vec![10, 20], "delivery was not exactly-once");
    });
    assert!(report.complete, "exploration truncated: {report:?}");
}

/// A producer blocked on a full queue is woken by `close` with a typed
/// error carrying its item back; the queued item still drains.
#[test]
fn close_wakes_blocked_producer_and_returns_the_item() {
    let report = model(|| {
        let q = Arc::new(ModelQueue::new(1));
        assert!(q.push(0).is_ok());
        let qp = Arc::clone(&q);
        let producer = thread::spawn(move || {
            // The queue is full and nobody pops: this push can only end in
            // the close waking us with the item handed back.
            assert_eq!(qp.push(1), Err(1));
        });
        q.close();
        producer.join();
        assert_eq!(q.pop(), Some(0), "drain-after-close lost the item");
        assert_eq!(q.pop(), None);
    });
    assert!(report.complete, "exploration truncated: {report:?}");
}

/// Close wakes *every* parked consumer (`notify_all`), each of which
/// observes the drained-and-closed state as `None`.
#[test]
fn close_wakes_every_blocked_consumer() {
    let report = model(|| {
        let q = Arc::new(ModelQueue::new(1));
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let q = Arc::clone(&q);
            consumers.push(thread::spawn(move || {
                assert_eq!(q.pop(), None, "nothing was ever pushed");
            }));
        }
        q.close();
        for c in consumers {
            c.join();
        }
    });
    assert!(report.complete, "exploration truncated: {report:?}");
}

/// With no producer, a timed pop must report `TimedOut` on every schedule
/// — never deadlock, never fabricate an item or a closure.
#[test]
fn pop_timed_times_out_instead_of_deadlocking() {
    let report = model(|| {
        let q = Arc::new(ModelQueue::new(1));
        let qc = Arc::clone(&q);
        let consumer = thread::spawn(move || {
            assert_eq!(qc.pop_timed(), Err(PopTimed::TimedOut));
        });
        consumer.join();
    });
    assert!(report.complete, "exploration truncated: {report:?}");
}

/// With a producer in flight, a timed pop never times out while the item
/// is (or becomes) available: the wakeup and the re-check loop are sound.
#[test]
fn pop_timed_never_times_out_while_an_item_is_available() {
    let report = model(|| {
        let q = Arc::new(ModelQueue::new(1));
        let qp = Arc::clone(&q);
        let producer = thread::spawn(move || {
            assert!(qp.push(7).is_ok());
        });
        assert_eq!(q.pop_timed(), Ok(7), "item lost or timeout fired early");
        producer.join();
    });
    assert!(report.complete, "exploration truncated: {report:?}");
}

/// Canary: the `if`-guarded wait must be caught. With two consumers and a
/// single item before close, some schedule wakes a consumer without an
/// item and the broken variant's `expect` fires.
#[test]
fn canary_if_guarded_wait_is_caught() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let q = Arc::new(ModelQueue::new(1));
            let mut consumers = Vec::new();
            for _ in 0..2 {
                let q = Arc::clone(&q);
                consumers.push(thread::spawn(move || {
                    let _ = q.pop_broken_if_guard();
                }));
            }
            assert!(q.push(1).is_ok());
            q.close();
            for c in consumers {
                c.join();
            }
        });
    }));
    assert!(
        result.is_err(),
        "the if-guarded wait explored clean — the model lost its teeth"
    );
}

/// Canary: a close that only `notify_one`s must be caught as a deadlock
/// (one of the two parked consumers is never woken).
#[test]
fn canary_close_notify_one_is_caught() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let q = Arc::new(ModelQueue::new(1));
            let mut consumers = Vec::new();
            for _ in 0..2 {
                let q = Arc::clone(&q);
                consumers.push(thread::spawn(move || {
                    assert_eq!(q.pop(), None);
                }));
            }
            q.close_broken_notify_one();
            for c in consumers {
                c.join();
            }
        });
    }));
    let msg = match result {
        Ok(_) => panic!("the notify_one close explored clean"),
        Err(p) => p.downcast_ref::<String>().cloned().unwrap_or_default(),
    };
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

/// Canary: consumers recording into an unsynchronized ledger are a
/// write-write data race, caught by the vector-clock detector even on
/// schedules where the final value looks right.
#[test]
fn canary_unsynchronized_ledger_race_is_caught() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        model(|| {
            let q = Arc::new(ModelQueue::new(2));
            let last_seen = Arc::new(RaceCell::new(0usize));
            let mut consumers = Vec::new();
            for _ in 0..2 {
                let (q, last_seen) = (Arc::clone(&q), Arc::clone(&last_seen));
                consumers.push(thread::spawn(move || {
                    while let Some(v) = q.pop() {
                        last_seen.set(v); // broken: no synchronization
                    }
                }));
            }
            assert!(q.push(1).is_ok());
            assert!(q.push(2).is_ok());
            q.close();
            for c in consumers {
                c.join();
            }
        });
    }));
    let msg = match result {
        Ok(_) => panic!("the unsynchronized ledger explored clean"),
        Err(p) => p.downcast_ref::<String>().cloned().unwrap_or_default(),
    };
    assert!(msg.contains("data race"), "unexpected failure: {msg}");
}
