//! `mmm-pipeline` — the real multi-threaded batch pipelines (§4.4.4).
//!
//! minimap2 overlaps I/O with computation through a 2-thread pipeline: two
//! pipeline threads alternate batches, each performing load → multi-thread
//! align → output, so one batch's computation hides the other's I/O.
//! manymap adds a dedicated I/O thread so input and output *also* overlap
//! each other, and sorts each batch by read length so long reads start
//! first (better load balance).
//!
//! This crate implements both designs generically over any item/result
//! types using crossbeam channels and scoped threads; the mapper plugs its
//! seed-chain-extend function in as the map stage. Output order is always
//! the input order, regardless of scheduling (tested).

pub mod pipeline;
pub mod pool;
pub mod sort;

pub use pipeline::{run_three_thread, run_two_thread, PipelineStats};
pub use pool::par_map_indexed;
pub use sort::sort_indices_by_len_desc;
