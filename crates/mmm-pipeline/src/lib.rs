//! `mmm-pipeline` — the real multi-threaded batch pipelines (§4.4.4).
//!
//! minimap2 overlaps I/O with computation through a 2-thread pipeline: two
//! pipeline threads alternate batches, each performing load → multi-thread
//! align → output, so one batch's computation hides the other's I/O.
//! manymap adds a dedicated I/O thread so input and output *also* overlap
//! each other, and sorts each batch by read length so long reads start
//! first (better load balance).
//!
//! This crate implements both designs generically over any item/result
//! types using bounded std channels and a persistent worker pool
//! ([`pool::WorkerPool`]): compute threads are spawned once per pipeline
//! run, each owning a private per-worker state built by a caller-supplied
//! factory (the mapper passes an alignment scratch arena). The mapper plugs
//! its seed-chain-extend function in as the map stage. Output order is
//! always the input order, regardless of scheduling (tested).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod batched;
pub mod error;
pub mod fault;
pub mod pipeline;
pub mod pool;
pub mod queue;
pub mod sort;
pub mod sync;

pub use batched::{
    try_run_three_thread_batched_from_queue, try_run_three_thread_batched_with_state,
};
pub use error::{DynError, PipelineError};
pub use fault::{failing_every, panicking_map};
pub use pipeline::{
    run_three_thread, run_three_thread_with_state, run_two_thread, run_two_thread_with_state,
    try_run_three_thread_with_state, try_run_two_thread_with_state, PanicHandler, PipelineStats,
};
pub use pool::{par_map_indexed, with_worker_pool, BatchOutcome, ItemPanic, WorkerPool};
pub use queue::{BoundedQueue, PopError, PushError};
pub use sort::sort_indices_by_len_desc;
pub use sync::{lock_unpoisoned, wait_unpoisoned};
