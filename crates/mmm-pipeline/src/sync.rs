//! Poison-tolerant lock helpers.
//!
//! The pipeline catches worker panics per item, but a panic elsewhere (the
//! body closure, a reader thread) can still poison a shared mutex. All
//! pipeline state guarded by these locks (counters, the batch hand-off
//! slots) stays internally consistent across a panic — every update is a
//! single field store — so recovering the guard is always safe and the
//! alternative, a `PoisonError` cascade that masks the original panic,
//! never helps. Every lock in this crate goes through these helpers.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Lock `m`, recovering the guard if a panicking thread poisoned it.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Wait on `cv`, recovering the guard if the mutex was poisoned while
/// parked.
pub fn wait_unpoisoned<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    // xtask-allow: condvar-wait-loop — the wait primitive itself; callers re-check in a loop, enforced at their sites.
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn recovers_from_poison() {
        let m = Mutex::new(7u32);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*lock_unpoisoned(&m), 7);
    }
}
