//! The batched 3-thread pipeline: plan → (schedule →) dispatch → finalize.
//!
//! The classic 3-thread pipeline hands each worker one item at a time. The
//! batched variant splits the compute stage so a whole batch's base-level
//! alignment can be executed by a *backend* (CPU SIMD lanes, the simulated
//! GPU, eventually real accelerators) in one submission:
//!
//! 1. **plan** — per item, on the worker pool: seed, chain, and describe
//!    the DP problems the item needs (returns `M`, e.g. a set of
//!    `AlignJob`s plus everything needed to resume). Hopeless candidate
//!    chains are rejected here by the pre-alignment filter
//!    (`mmm_exec::filter`), so every later stage sees the same job list;
//! 2. **dispatch** — once per batch, on the compute thread: ship every
//!    item's jobs to the backend, get `D` (e.g. the `AlignResult`s) back.
//!    The dispatch closure may interpose the length-binned scheduler
//!    (`mmm_exec::sched`, `SupervisedBackend::submit_scheduled`): jobs are
//!    binned by DP-matrix size, batches sized per backend, device-ineligible
//!    giants routed to the host standby, and the outcomes scattered back to
//!    their original indices — so this stage's contract (result `i` belongs
//!    to job `i`) is untouched by any reordering inside it;
//! 3. **finalize** — per item, on the worker pool again: splice the
//!    backend's results into the item's output (returns `R`).
//!
//! Both per-item phases run on the *same* persistent pool (one worker-state
//! build per run, zero per-batch spawns) and keep PR-2's panic isolation: a
//! panic in `plan` or `finalize` degrades that one item through the
//! [`PanicHandler`]; items that fail in `plan` are excluded from dispatch.
//! Dispatch reports per item: each plan comes back with
//! `Result<D, String>`, and a failed item degrades through the same
//! [`PanicHandler`] instead of killing the run (the supervised backend's
//! quarantine channel). A whole-batch `Err` from dispatch stays fatal
//! ([`PipelineError::Dispatch`]) — that is the `--fail-fast` escape hatch
//! and the contract-violation path (wrong result count).
//!
//! Reader/writer semantics (bounded channels, prompt shutdown, first error
//! wins, output in input order) are identical to
//! [`crate::try_run_three_thread_with_state`].

use std::sync::mpsc::sync_channel;
use std::sync::Mutex;
use std::time::Instant;

use crate::error::{DynError, PipelineError};
use crate::pipeline::{PanicHandler, PipelineStats};
use crate::pool::with_worker_pool;
use crate::queue::BoundedQueue;
use crate::sort::sort_indices_by_len_desc;
use crate::sync::lock_unpoisoned;

/// Internal pool item: the two per-item phases share one worker pool, so
/// the pool's item type is this enum.
enum Step<I, M, D> {
    Plan(I),
    Fin(I, M, D),
}

/// Internal pool result matching [`Step`].
enum StepOut<M, R> {
    Planned(M),
    Final(R),
}

fn record_error(slot: &Mutex<Option<PipelineError>>, e: PipelineError) {
    let mut g = lock_unpoisoned(slot);
    if g.is_none() {
        *g = Some(e);
    }
}

/// Run one batch through plan → dispatch → finalize. Returns results in
/// original item order plus the number of degraded items.
#[allow(clippy::type_complexity)]
fn run_batch<I, M, D, R>(
    pool: &crate::pool::WorkerPool<'_, Step<I, M, D>, StepOut<M, R>>,
    batch: Vec<I>,
    dispatch: &mut (dyn FnMut(Vec<M>) -> Result<Vec<(M, Result<D, String>)>, DynError> + Send),
    len_of: &(dyn Fn(&I) -> usize + Sync),
    on_item_panic: PanicHandler<'_, I, R>,
    sort_by_len: bool,
) -> Result<(Vec<R>, usize), PipelineError>
where
    I: Send + Sync,
    M: Send + Sync,
    D: Send + Sync,
    R: Send,
{
    let n = batch.len();
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let mut failed = 0usize;

    // Phase 1: plan every item (longest first when requested — long reads
    // carry the most alignment work, so they anchor the schedule).
    let plan_items: Vec<Step<I, M, D>> = batch.into_iter().map(Step::Plan).collect();
    let order = if sort_by_len {
        sort_indices_by_len_desc(&plan_items, |s| match s {
            Step::Plan(i) => len_of(i),
            Step::Fin(i, _, _) => len_of(i),
        })
    } else {
        (0..n).collect()
    };
    let outcome = pool.run_batch_catching(&plan_items, &order);
    let mut panic_msg: Vec<Option<String>> = Vec::with_capacity(n);
    panic_msg.resize_with(n, || None);
    for p in &outcome.panics {
        panic_msg[p.index] = Some(p.message.clone());
    }

    // Collect survivors for dispatch; degrade plan-phase failures now.
    let mut fin_idx: Vec<usize> = Vec::with_capacity(n);
    let mut fin_items: Vec<I> = Vec::with_capacity(n);
    let mut plans: Vec<M> = Vec::with_capacity(n);
    for (idx, (step, res)) in plan_items.into_iter().zip(outcome.results).enumerate() {
        let Step::Plan(item) = step else {
            continue; // phase-1 items are always Plan
        };
        match res {
            Some(StepOut::Planned(m)) => {
                fin_idx.push(idx);
                fin_items.push(item);
                plans.push(m);
            }
            _ => {
                let msg = panic_msg[idx]
                    .take()
                    .unwrap_or_else(|| "item abandoned by the worker pool".to_string());
                match on_item_panic {
                    Some(handler) => {
                        out[idx] = Some(handler(&item, &msg));
                        failed += 1;
                    }
                    None => {
                        return Err(PipelineError::WorkerPanic {
                            item_index: idx,
                            message: msg,
                        })
                    }
                }
            }
        }
    }

    // Phase 2: one backend submission for the whole batch, serial on the
    // compute thread.
    let expected = plans.len();
    let dispatched = dispatch(plans).map_err(PipelineError::Dispatch)?;
    if dispatched.len() != expected {
        return Err(PipelineError::Dispatch(
            format!(
                "dispatch returned {} results for {expected} plans",
                dispatched.len()
            )
            .into(),
        ));
    }

    // Per-item dispatch failures degrade like panics; survivors go on to
    // finalize. `fin_map[k]` is the original index of finalize step `k`.
    let mut fin_steps: Vec<Step<I, M, D>> = Vec::with_capacity(expected);
    let mut fin_map: Vec<usize> = Vec::with_capacity(expected);
    for ((idx, item), (m, dres)) in fin_idx.into_iter().zip(fin_items).zip(dispatched) {
        match dres {
            Ok(d) => {
                fin_map.push(idx);
                fin_steps.push(Step::Fin(item, m, d));
            }
            Err(message) => match on_item_panic {
                Some(handler) => {
                    out[idx] = Some(handler(&item, &message));
                    failed += 1;
                }
                None => {
                    return Err(PipelineError::DispatchItem {
                        item_index: idx,
                        message,
                    })
                }
            },
        }
    }

    // Phase 3: finalize survivors on the pool.
    let fin_order: Vec<usize> = (0..fin_steps.len()).collect();
    let outcome = pool.run_batch_catching(&fin_steps, &fin_order);
    let mut fin_msg: Vec<Option<String>> = Vec::with_capacity(fin_steps.len());
    fin_msg.resize_with(fin_steps.len(), || None);
    for p in &outcome.panics {
        fin_msg[p.index] = Some(p.message.clone());
    }
    for (k, (step, res)) in fin_steps.into_iter().zip(outcome.results).enumerate() {
        let idx = fin_map[k];
        match res {
            Some(StepOut::Final(r)) => out[idx] = Some(r),
            _ => {
                let Step::Fin(item, _, _) = step else {
                    continue; // phase-2 items are always Fin
                };
                let msg = fin_msg[k]
                    .take()
                    .unwrap_or_else(|| "item abandoned by the worker pool".to_string());
                match on_item_panic {
                    Some(handler) => {
                        out[idx] = Some(handler(&item, &msg));
                        failed += 1;
                    }
                    None => {
                        return Err(PipelineError::WorkerPanic {
                            item_index: idx,
                            message: msg,
                        })
                    }
                }
            }
        }
    }

    // Every slot is filled: survivors by phase 3, failures by the handler.
    Ok((out.into_iter().flatten().collect(), failed))
}

/// The batched manymap pipeline: reader thread → {plan on the pool →
/// dispatch on the compute thread → finalize on the pool} → writer thread.
///
/// See the module docs for phase semantics. Generic over:
/// * `I` — input item (a read), `M` — per-item plan, `D` — per-item
///   dispatch result, `R` — output record, `S` — per-worker state;
/// * `plan(&mut S, &I) -> M` and `finalize(&mut S, &I, &M, &D) -> R` run on
///   the worker pool with panic isolation;
/// * `dispatch(Vec<M>) -> Result<Vec<(M, Result<D, String>)>, DynError>`
///   runs serially per batch and must return exactly one `(plan, result)`
///   pair per plan, in order; a per-item `Err(String)` degrades that item
///   through the panic handler (fatal
///   [`PipelineError::DispatchItem`] without one). A whole-batch `Err`
///   aborts the run with [`PipelineError::Dispatch`].
#[allow(clippy::too_many_arguments)]
pub fn try_run_three_thread_batched_with_state<
    I,
    M,
    D,
    R,
    S,
    FIn,
    FState,
    FPlan,
    FDispatch,
    FFin,
    FLen,
    FOut,
>(
    mut read_batch: FIn,
    make_state: FState,
    plan: FPlan,
    mut dispatch: FDispatch,
    finalize: FFin,
    len_of: FLen,
    mut write_batch: FOut,
    on_item_panic: PanicHandler<'_, I, R>,
    threads: usize,
    sort_by_len: bool,
) -> Result<PipelineStats, PipelineError>
where
    I: Send + Sync,
    M: Send + Sync,
    D: Send + Sync,
    R: Send,
    FIn: FnMut() -> Result<Option<Vec<I>>, DynError> + Send,
    FState: Fn(usize) -> S + Sync,
    FPlan: Fn(&mut S, &I) -> M + Sync,
    FDispatch: FnMut(Vec<M>) -> Result<Vec<(M, Result<D, String>)>, DynError> + Send,
    FFin: Fn(&mut S, &I, &M, &D) -> R + Sync,
    FLen: Fn(&I) -> usize + Sync,
    FOut: FnMut(Vec<R>) -> Result<(), DynError> + Send,
{
    let stats = Mutex::new(PipelineStats::default());
    let failure = Mutex::new(None::<PipelineError>);
    let wall = Instant::now();

    let step = |st: &mut S, item: &Step<I, M, D>| match item {
        Step::Plan(i) => StepOut::Planned(plan(st, i)),
        Step::Fin(i, m, d) => StepOut::Final(finalize(st, i, m, d)),
    };

    with_worker_pool(threads, make_state, step, |pool| {
        let (in_tx, in_rx) = sync_channel::<Vec<I>>(2);
        let (out_tx, out_rx) = sync_channel::<Vec<R>>(2);

        std::thread::scope(|scope| {
            let stats_ref = &stats;
            let failure_ref = &failure;
            // Reader.
            scope.spawn(move || loop {
                let t0 = Instant::now();
                let batch = read_batch();
                lock_unpoisoned(stats_ref).in_seconds += t0.elapsed().as_secs_f64();
                match batch {
                    Ok(Some(b)) => {
                        if in_tx.send(b).is_err() {
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        record_error(failure_ref, PipelineError::Read(e));
                        break;
                    }
                }
            });

            // Writer.
            let writer = scope.spawn(move || {
                while let Ok(out) = out_rx.recv() {
                    let t0 = Instant::now();
                    let r = write_batch(out);
                    lock_unpoisoned(stats_ref).out_seconds += t0.elapsed().as_secs_f64();
                    if let Err(e) = r {
                        record_error(failure_ref, PipelineError::Write(e));
                        break;
                    }
                }
            });

            // Compute stage: plan/finalize on the pool, dispatch here.
            let in_rx = in_rx;
            while let Ok(batch) = in_rx.recv() {
                let t0 = Instant::now();
                let n = batch.len();
                let settled = run_batch(
                    pool,
                    batch,
                    &mut dispatch,
                    &len_of,
                    on_item_panic,
                    sort_by_len,
                );
                let results = match settled {
                    Ok((results, failed)) => {
                        let mut s = lock_unpoisoned(&stats);
                        s.compute_seconds += t0.elapsed().as_secs_f64();
                        s.batches += 1;
                        s.items += n;
                        s.failed_items += failed;
                        results
                    }
                    Err(fatal) => {
                        record_error(&failure, fatal);
                        break;
                    }
                };
                if out_tx.send(results).is_err() {
                    break;
                }
            }
            drop(in_rx);
            drop(out_tx);
            if let Err(payload) = writer.join() {
                std::panic::resume_unwind(payload);
            }
        });
    });

    if let Some(e) = lock_unpoisoned(&failure).take() {
        return Err(e);
    }
    let mut s = stats
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    s.wall_seconds = wall.elapsed().as_secs_f64();
    Ok(s)
}

/// The batched pipeline fed from a [`BoundedQueue`] instead of a reader
/// closure — the serve daemon's entry point (DESIGN.md §12).
///
/// A scheduler thread (or any producer set) pushes item batches into
/// `input`; this function consumes them through the identical plan →
/// dispatch → finalize machinery as
/// [`try_run_three_thread_batched_with_state`] and returns once `input` is
/// **closed and drained** — so `input.close()` is the drain signal: every
/// batch accepted before the close is planned, dispatched, finalized, and
/// written before this function returns. The queue's bounded capacity is
/// the pipeline-facing backpressure edge: producers block (or observe
/// `Full` via `try_push`) once the pipeline falls behind.
#[allow(clippy::too_many_arguments)]
pub fn try_run_three_thread_batched_from_queue<
    I,
    M,
    D,
    R,
    S,
    FState,
    FPlan,
    FDispatch,
    FFin,
    FLen,
    FOut,
>(
    input: &BoundedQueue<Vec<I>>,
    make_state: FState,
    plan: FPlan,
    dispatch: FDispatch,
    finalize: FFin,
    len_of: FLen,
    write_batch: FOut,
    on_item_panic: PanicHandler<'_, I, R>,
    threads: usize,
    sort_by_len: bool,
) -> Result<PipelineStats, PipelineError>
where
    I: Send + Sync,
    M: Send + Sync,
    D: Send + Sync,
    R: Send,
    FState: Fn(usize) -> S + Sync,
    FPlan: Fn(&mut S, &I) -> M + Sync,
    FDispatch: FnMut(Vec<M>) -> Result<Vec<(M, Result<D, String>)>, DynError> + Send,
    FFin: Fn(&mut S, &I, &M, &D) -> R + Sync,
    FLen: Fn(&I) -> usize + Sync,
    FOut: FnMut(Vec<R>) -> Result<(), DynError> + Send,
{
    // `pop` blocks until a batch arrives and returns `None` only when the
    // queue is closed *and* drained, which is exactly the reader contract
    // (`Ok(None)` = end of input). Queue consumption can never itself fail,
    // so the reader closure is infallible.
    try_run_three_thread_batched_with_state(
        || Ok(input.pop()),
        make_state,
        plan,
        dispatch,
        finalize,
        len_of,
        write_batch,
        on_item_panic,
        threads,
        sort_by_len,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feeder(
        mut data: Vec<Vec<u64>>,
    ) -> impl FnMut() -> Result<Option<Vec<u64>>, DynError> + Send {
        data.reverse();
        move || Ok(data.pop())
    }

    /// plan doubles, dispatch adds 1 to every plan, finalize multiplies the
    /// dispatched value by 10 — so every stage's contribution is visible.
    fn run_simple(input: Vec<Vec<u64>>, threads: usize) -> (Vec<u64>, PipelineStats) {
        let out = Mutex::new(Vec::new());
        let stats = try_run_three_thread_batched_with_state(
            feeder(input),
            |_| (),
            |(), &x: &u64| x * 2,
            |plans: Vec<u64>| Ok(plans.into_iter().map(|m| (m, Ok(m + 1))).collect()),
            |(), _item: &u64, _m: &u64, d: &u64| d * 10,
            |_| 1,
            |r| {
                out.lock().unwrap().extend(r);
                Ok(())
            },
            None,
            threads,
            false,
        )
        .unwrap();
        (out.into_inner().unwrap(), stats)
    }

    #[test]
    fn phases_compose_in_order() {
        let input = vec![vec![1u64, 2, 3], vec![4, 5]];
        let (got, stats) = run_simple(input, 3);
        // x -> plan 2x -> dispatch 2x+1 -> finalize (2x+1)*10
        assert_eq!(got, vec![30, 50, 70, 90, 110]);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.items, 5);
        assert_eq!(stats.failed_items, 0);
    }

    #[test]
    fn sorted_compute_keeps_output_order() {
        let input = vec![vec![5u64, 1, 9, 3]];
        let out = Mutex::new(Vec::new());
        try_run_three_thread_batched_with_state(
            feeder(input),
            |_| (),
            |(), &x: &u64| x,
            |plans: Vec<u64>| Ok(plans.into_iter().map(|m| (m, Ok(()))).collect()),
            |(), _item, m: &u64, _d: &()| *m,
            |&x| x as usize, // "length" = value: compute order differs
            |r| {
                out.lock().unwrap().extend(r);
                Ok(())
            },
            None,
            4,
            true,
        )
        .unwrap();
        assert_eq!(out.into_inner().unwrap(), vec![5, 1, 9, 3]);
    }

    #[test]
    fn plan_panic_degrades_one_item_and_skips_its_dispatch() {
        let input = vec![vec![1u64, 7, 3]];
        let out = Mutex::new(Vec::new());
        let seen_by_dispatch = Mutex::new(Vec::new());
        let handler = |item: &u64, _msg: &str| item * 1000;
        let stats = try_run_three_thread_batched_with_state(
            feeder(input),
            |_| (),
            |(), &x: &u64| {
                if x == 7 {
                    panic!("bad read");
                }
                x
            },
            |plans: Vec<u64>| {
                seen_by_dispatch
                    .lock()
                    .unwrap()
                    .extend(plans.iter().copied());
                Ok(plans.into_iter().map(|m| (m, Ok(()))).collect())
            },
            |(), _item, m: &u64, _d: &()| *m,
            |_| 1,
            |r| {
                out.lock().unwrap().extend(r);
                Ok(())
            },
            Some(&handler),
            2,
            false,
        )
        .unwrap();
        assert_eq!(stats.failed_items, 1);
        assert_eq!(out.into_inner().unwrap(), vec![1, 7000, 3]);
        // The panicked item's plan never reached the backend.
        assert_eq!(seen_by_dispatch.into_inner().unwrap(), vec![1, 3]);
    }

    #[test]
    fn finalize_panic_degrades_one_item() {
        let input = vec![vec![1u64, 2, 3, 4]];
        let out = Mutex::new(Vec::new());
        let handler = |item: &u64, _msg: &str| item + 900;
        let stats = try_run_three_thread_batched_with_state(
            feeder(input),
            |_| (),
            |(), &x: &u64| x,
            |plans: Vec<u64>| Ok(plans.into_iter().map(|m| (m, Ok(()))).collect()),
            |(), _item, m: &u64, _d: &()| {
                if *m == 3 {
                    panic!("bad finalize");
                }
                *m
            },
            |_| 1,
            |r| {
                out.lock().unwrap().extend(r);
                Ok(())
            },
            Some(&handler),
            2,
            false,
        )
        .unwrap();
        assert_eq!(stats.failed_items, 1);
        assert_eq!(out.into_inner().unwrap(), vec![1, 2, 903, 4]);
    }

    #[test]
    fn panic_without_handler_is_fatal_with_item_index() {
        let input = vec![vec![1u64, 7, 3]];
        let err = try_run_three_thread_batched_with_state(
            feeder(input),
            |_| (),
            |(), &x: &u64| {
                if x == 7 {
                    panic!("bad read");
                }
                x
            },
            |plans: Vec<u64>| Ok(plans.into_iter().map(|m| (m, Ok(()))).collect()),
            |(), _item, m: &u64, _d: &()| *m,
            |_| 1,
            |_r| Ok(()),
            None,
            2,
            false,
        )
        .unwrap_err();
        match err {
            PipelineError::WorkerPanic { item_index, .. } => assert_eq!(item_index, 1),
            other => panic!("expected WorkerPanic, got {other}"),
        }
    }

    #[test]
    fn dispatch_error_is_fatal() {
        let input = vec![vec![1u64, 2], vec![3, 4]];
        let err = try_run_three_thread_batched_with_state(
            feeder(input),
            |_| (),
            |(), &x: &u64| x,
            |_plans: Vec<u64>| {
                Err::<Vec<(u64, Result<(), String>)>, DynError>("device on fire".into())
            },
            |(), _item, m: &u64, _d: &()| *m,
            |_| 1,
            |_r| Ok(()),
            None,
            2,
            false,
        )
        .unwrap_err();
        match err {
            PipelineError::Dispatch(e) => assert!(e.to_string().contains("device on fire")),
            other => panic!("expected Dispatch, got {other}"),
        }
    }

    #[test]
    fn per_item_dispatch_error_degrades_that_item_only() {
        let input = vec![vec![1u64, 7, 3]];
        let out = Mutex::new(Vec::new());
        let handler = |item: &u64, msg: &str| {
            assert!(msg.contains("quarantined"), "handler saw {msg:?}");
            item * 100
        };
        let stats = try_run_three_thread_batched_with_state(
            feeder(input),
            |_| (),
            |(), &x: &u64| x,
            |plans: Vec<u64>| {
                Ok(plans
                    .into_iter()
                    .map(|m| {
                        if m == 7 {
                            (m, Err("job quarantined".to_string()))
                        } else {
                            (m, Ok(()))
                        }
                    })
                    .collect())
            },
            |(), _item, m: &u64, _d: &()| *m,
            |_| 1,
            |r| {
                out.lock().unwrap().extend(r);
                Ok(())
            },
            Some(&handler),
            2,
            false,
        )
        .unwrap();
        assert_eq!(stats.failed_items, 1);
        assert_eq!(out.into_inner().unwrap(), vec![1, 700, 3]);
    }

    #[test]
    fn per_item_dispatch_error_without_handler_is_fatal_with_index() {
        let input = vec![vec![1u64, 7, 3]];
        let err = try_run_three_thread_batched_with_state(
            feeder(input),
            |_| (),
            |(), &x: &u64| x,
            |plans: Vec<u64>| {
                Ok(plans
                    .into_iter()
                    .map(|m| {
                        if m == 7 {
                            (m, Err("job quarantined".to_string()))
                        } else {
                            (m, Ok(()))
                        }
                    })
                    .collect())
            },
            |(), _item, m: &u64, _d: &()| *m,
            |_| 1,
            |_r| Ok(()),
            None,
            2,
            false,
        )
        .unwrap_err();
        match err {
            PipelineError::DispatchItem {
                item_index,
                message,
            } => {
                assert_eq!(item_index, 1);
                assert!(message.contains("quarantined"));
            }
            other => panic!("expected DispatchItem, got {other}"),
        }
    }

    #[test]
    fn short_dispatch_result_is_fatal_not_silent() {
        let input = vec![vec![1u64, 2, 3]];
        let err = try_run_three_thread_batched_with_state(
            feeder(input),
            |_| (),
            |(), &x: &u64| x,
            |plans: Vec<u64>| Ok(plans.into_iter().skip(1).map(|m| (m, Ok(()))).collect()),
            |(), _item, m: &u64, _d: &()| *m,
            |_| 1,
            |_r| Ok(()),
            None,
            2,
            false,
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::Dispatch(_)));
    }

    #[test]
    fn empty_stream_and_empty_batches() {
        let (got, stats) = run_simple(vec![], 2);
        assert!(got.is_empty());
        assert_eq!(stats.batches, 0);
        let (got, stats) = run_simple(vec![vec![], vec![8]], 2);
        assert_eq!(got, vec![170]);
        assert_eq!(stats.batches, 2);
    }

    /// The queue-fed variant: a live producer pushes batches while the
    /// pipeline runs; `close()` drains and terminates it. Results preserve
    /// push order.
    #[test]
    fn queue_fed_pipeline_drains_on_close() {
        let input: BoundedQueue<Vec<u64>> = BoundedQueue::new(2);
        let out = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            let input = &input;
            scope.spawn(move || {
                for b in [vec![1u64, 2, 3], vec![4, 5], vec![6]] {
                    input.push(b).unwrap();
                }
                input.close();
            });
            let stats = try_run_three_thread_batched_from_queue(
                input,
                |_| (),
                |(), &x: &u64| x * 2,
                |plans: Vec<u64>| Ok(plans.into_iter().map(|m| (m, Ok(m + 1))).collect()),
                |(), _item: &u64, _m: &u64, d: &u64| d * 10,
                |_| 1,
                |r| {
                    out.lock().unwrap().extend(r);
                    Ok(())
                },
                None,
                3,
                false,
            )
            .unwrap();
            assert_eq!(stats.batches, 3);
            assert_eq!(stats.items, 6);
        });
        assert_eq!(
            out.into_inner().unwrap(),
            vec![30, 50, 70, 90, 110, 130] // (2x+1)*10
        );
    }

    /// Closing an already-empty queue ends the run immediately with zero
    /// batches — the idle-daemon shutdown path.
    #[test]
    fn queue_fed_pipeline_handles_immediate_close() {
        let input: BoundedQueue<Vec<u64>> = BoundedQueue::new(1);
        input.close();
        let stats = try_run_three_thread_batched_from_queue(
            &input,
            |_| (),
            |(), &x: &u64| x,
            |plans: Vec<u64>| Ok(plans.into_iter().map(|m| (m, Ok(()))).collect()),
            |(), _item, m: &u64, _d: &()| *m,
            |_| 1,
            |_r| Ok(()),
            None,
            2,
            false,
        )
        .unwrap();
        assert_eq!(stats.batches, 0);
        assert_eq!(stats.items, 0);
    }

    #[test]
    fn read_error_stops_run() {
        let mut calls = 0;
        let err = try_run_three_thread_batched_with_state(
            move || {
                calls += 1;
                if calls > 2 {
                    Err::<Option<Vec<u64>>, DynError>("disk gone".into())
                } else {
                    Ok(Some(vec![calls as u64]))
                }
            },
            |_| (),
            |(), &x: &u64| x,
            |plans: Vec<u64>| Ok(plans.into_iter().map(|m| (m, Ok(()))).collect()),
            |(), _item, m: &u64, _d: &()| *m,
            |_| 1,
            |_r| Ok(()),
            None,
            2,
            false,
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::Read(_)));
    }
}
