//! `BoundedQueue` — a bounded MPMC queue with close-and-drain semantics.
//!
//! The serve front-end (DESIGN.md §12) moves work between long-lived
//! threads that outlive any single pipeline run: tenant sessions push read
//! batches in, the fair scheduler pops them, and result routing runs the
//! other way. `std::sync::mpsc` channels fit poorly there — they are
//! single-consumer, and a disconnected channel cannot distinguish "producer
//! finished, drain the rest" from "tear everything down". This queue is the
//! seam instead:
//!
//! * **bounded** — `push` blocks once `capacity` items are waiting, which
//!   is the backpressure story: a tenant that outruns the backend blocks in
//!   its own session thread instead of growing the daemon's heap;
//! * **multi-producer, multi-consumer** — any number of threads may push
//!   and pop through a shared reference (callers wrap it in `Arc`);
//! * **closeable** — `close()` marks the end of input. Pushes fail from
//!   then on, but consumers keep draining: `pop` returns every item already
//!   queued and only then reports closure. That ordering is what makes a
//!   clean SIGTERM drain possible — close the queue, join the consumer, and
//!   every accepted item has been processed.
//!
//! Implementation: `Mutex<VecDeque>` with two condvars (space, items). At
//! serve batch granularity (hundreds of pushes per second, not millions)
//! lock-free buys nothing; correct blocking and wakeup is the whole game.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::sync::{lock_unpoisoned, wait_unpoisoned};

/// Why a push was refused. Carries the item back so the caller can reroute
/// it (e.g. report the failure to the tenant that sent it).
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is closed; no further items will be accepted.
    Closed(T),
    /// (`try_push` only) the queue is at capacity right now.
    Full(T),
}

impl<T> PushError<T> {
    /// Recover the rejected item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Closed(t) | PushError::Full(t) => t,
        }
    }

    pub fn is_closed(&self) -> bool {
        matches!(self, PushError::Closed(_))
    }
}

/// Why a timed pop returned empty-handed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PopError {
    /// Nothing arrived within the timeout; the queue is still open.
    TimedOut,
    /// The queue is closed and fully drained — no item will ever arrive.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue. See the module docs.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when an item (or closure) becomes visible to consumers.
    items: Condvar,
    /// Signalled when space (or closure) becomes visible to producers.
    space: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            items: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently waiting. A snapshot — stale by the time it returns;
    /// for monitoring and tests, not for flow control.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.inner).items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn is_closed(&self) -> bool {
        lock_unpoisoned(&self.inner).closed
    }

    /// Block until there is room, then enqueue. Fails only when the queue
    /// is (or becomes, while waiting) closed.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = lock_unpoisoned(&self.inner);
        loop {
            if g.closed {
                return Err(PushError::Closed(item));
            }
            if g.items.len() < self.capacity {
                g.items.push_back(item);
                drop(g);
                self.items.notify_one();
                return Ok(());
            }
            g = wait_unpoisoned(&self.space, g);
        }
    }

    /// Enqueue without blocking: `Full` when at capacity, `Closed` after
    /// close. The backpressure probe for callers that must not stall (a
    /// session thread deciding whether to make the tenant wait).
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = lock_unpoisoned(&self.inner);
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        g.items.push_back(item);
        drop(g);
        self.items.notify_one();
        Ok(())
    }

    /// Block until an item arrives. `None` means closed **and** drained:
    /// every item ever pushed has been handed to some consumer.
    pub fn pop(&self) -> Option<T> {
        let mut g = lock_unpoisoned(&self.inner);
        loop {
            if let Some(item) = g.items.pop_front() {
                drop(g);
                self.space.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = wait_unpoisoned(&self.items, g);
        }
    }

    /// Like [`pop`](Self::pop) with a deadline, for consumers that also
    /// poll something else (a drain flag, a socket).
    pub fn pop_timeout(&self, timeout: Duration) -> Result<T, PopError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = lock_unpoisoned(&self.inner);
        loop {
            if let Some(item) = g.items.pop_front() {
                drop(g);
                self.space.notify_one();
                return Ok(item);
            }
            if g.closed {
                return Err(PopError::Closed);
            }
            let now = std::time::Instant::now();
            let Some(left) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(PopError::TimedOut);
            };
            let (guard, _timeout_hit) = self
                .items
                .wait_timeout(g, left)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            g = guard;
        }
    }

    /// Dequeue without blocking.
    pub fn try_pop(&self) -> Option<T> {
        let item = lock_unpoisoned(&self.inner).items.pop_front();
        if item.is_some() {
            self.space.notify_one();
        }
        item
    }

    /// Mark the end of input and wake every waiter. Items already queued
    /// remain poppable (close-and-drain); further pushes fail. Idempotent.
    pub fn close(&self) {
        lock_unpoisoned(&self.inner).closed = true;
        self.items.notify_all();
        self.space.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_through_push_and_pop() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn try_push_reports_full_and_returns_item() {
        let q = BoundedQueue::new(2);
        q.push("a").unwrap();
        q.push("b").unwrap();
        let err = q.try_push("c").unwrap_err();
        assert!(matches!(err, PushError::Full("c")));
        assert_eq!(err.into_inner(), "c");
        // Popping frees a slot.
        assert_eq!(q.pop(), Some("a"));
        q.try_push("c").unwrap();
    }

    #[test]
    fn close_then_drain_then_none() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert!(q.push(3).unwrap_err().is_closed());
        // Already-queued items survive closure.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None); // stays terminal
    }

    #[test]
    fn pop_timeout_distinguishes_empty_from_closed() {
        let q: BoundedQueue<u8> = BoundedQueue::new(1);
        assert_eq!(
            q.pop_timeout(Duration::from_millis(10)),
            Err(PopError::TimedOut)
        );
        q.close();
        assert_eq!(
            q.pop_timeout(Duration::from_millis(10)),
            Err(PopError::Closed)
        );
    }

    /// Regression (concurrency-soundness audit): `pop_timeout`'s deadline
    /// is computed once, *before* the wait loop — a wakeup that loses its
    /// item to a faster consumer re-waits only for the time remaining. A
    /// per-wakeup restart would let a stream of appear-and-stolen items
    /// extend the timeout indefinitely; this pins the absolute behaviour
    /// under exactly that churn.
    #[test]
    fn pop_timeout_deadline_is_absolute_across_wakeups() {
        let q = Arc::new(BoundedQueue::<u64>::new(4));
        let qc = Arc::clone(&q);
        // Churn: wake any waiter roughly every 20 ms with an item that is
        // immediately stolen back, for 450 ms.
        let churn = std::thread::spawn(move || {
            let start = std::time::Instant::now();
            let mut i = 0u64;
            while start.elapsed() < Duration::from_millis(450) {
                let _ = qc.push(i);
                i += 1;
                let _ = qc.try_pop();
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        let timeout = Duration::from_millis(150);
        let all_done = std::time::Instant::now() + Duration::from_millis(700);
        while std::time::Instant::now() < all_done {
            let t0 = std::time::Instant::now();
            match q.pop_timeout(timeout) {
                // Winning a race against the churn thread is fine; what
                // matters is that no single call overruns its deadline.
                Ok(_) | Err(PopError::TimedOut) => {}
                Err(PopError::Closed) => panic!("queue never closes here"),
            }
            assert!(
                t0.elapsed() < timeout + Duration::from_millis(250),
                "pop_timeout overran its absolute deadline: {:?}",
                t0.elapsed()
            );
        }
        churn.join().unwrap();
    }

    /// A full queue blocks its producer until a consumer frees space — the
    /// backpressure contract the serve front-end is built on.
    #[test]
    fn full_queue_blocks_producer_until_pop() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u32).unwrap();
        let qp = q.clone();
        let producer = std::thread::spawn(move || qp.push(1).is_ok());
        // The producer must be parked: the queue never exceeds capacity.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    /// Closing while producers are parked wakes them with a typed error
    /// that hands their item back.
    #[test]
    fn close_wakes_blocked_producer() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(7u32).unwrap();
        let qp = q.clone();
        let producer = std::thread::spawn(move || qp.push(8));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        let err = producer.join().unwrap().unwrap_err();
        assert!(err.is_closed());
        assert_eq!(err.into_inner(), 8);
    }

    /// Many producers, many consumers: every item is delivered exactly
    /// once, and the drain after close loses nothing.
    #[test]
    fn mpmc_delivers_every_item_exactly_once() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 3;
        const PER: usize = 200;
        let q = Arc::new(BoundedQueue::new(8));
        let got = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..PER {
                    q.push(p * PER + i).unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..CONSUMERS {
            let q = q.clone();
            let got = got.clone();
            consumers.push(std::thread::spawn(move || {
                while let Some(v) = q.pop() {
                    got.lock().unwrap().push(v);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        for c in consumers {
            c.join().unwrap();
        }
        let mut got = Arc::try_unwrap(got).unwrap().into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..PRODUCERS * PER).collect::<Vec<_>>());
    }
}
