//! Batch sorting (§4.4.4): long reads first, for load balance.

/// Processing order: indices sorted by descending item length. Results are
/// still emitted in the original order (the pool maps back by index).
pub fn sort_indices_by_len_desc<T, F: Fn(&T) -> usize>(items: &[T], len_of: F) -> Vec<usize> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(len_of(&items[i])));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_first() {
        let items = vec![vec![0u8; 3], vec![0; 10], vec![0; 1]];
        let order = sort_indices_by_len_desc(&items, |v| v.len());
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn stable_for_equal_lengths() {
        let items = vec![vec![0u8; 5], vec![0; 5], vec![0; 5]];
        assert_eq!(sort_indices_by_len_desc(&items, |v| v.len()), vec![0, 1, 2]);
    }
}
