//! The two pipeline designs.

use std::sync::mpsc::sync_channel;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::pool::with_worker_pool;
use crate::sort::sort_indices_by_len_desc;

/// Aggregate timings of a pipeline run. Stage seconds are summed across
/// batches (stages overlap, so they may exceed `wall_seconds`).
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineStats {
    pub batches: usize,
    pub items: usize,
    pub in_seconds: f64,
    pub compute_seconds: f64,
    pub out_seconds: f64,
    pub wall_seconds: f64,
}

/// manymap's 3-thread design: a reader thread, the compute stage (persistent
/// worker pool), and a writer thread, connected by bounded channels so input
/// and output overlap computation *and* each other.
///
/// * `read_batch` returns the next batch or `None` at end of input;
/// * each of the `threads` workers builds one private state with
///   `make_state(worker_idx)` when the pool starts (e.g. an alignment
///   scratch arena) and keeps it for the whole run;
/// * `map` is applied to every item (longest-first when `sort_by_len` is
///   set, via `len_of`);
/// * `write_batch` consumes results in batch order.
pub fn run_three_thread_with_state<I, R, S, FIn, FState, FMap, FLen, FOut>(
    mut read_batch: FIn,
    make_state: FState,
    map: FMap,
    len_of: FLen,
    mut write_batch: FOut,
    threads: usize,
    sort_by_len: bool,
) -> PipelineStats
where
    I: Send + Sync,
    R: Send,
    FIn: FnMut() -> Option<Vec<I>> + Send,
    FState: Fn(usize) -> S + Sync,
    FMap: Fn(&mut S, &I) -> R + Sync,
    FLen: Fn(&I) -> usize + Sync,
    FOut: FnMut(Vec<R>) + Send,
{
    let stats = Mutex::new(PipelineStats::default());
    let wall = Instant::now();

    with_worker_pool(threads, make_state, map, |pool| {
        let (in_tx, in_rx) = sync_channel::<Vec<I>>(2);
        let (out_tx, out_rx) = sync_channel::<Vec<R>>(2);

        std::thread::scope(|scope| {
            // Reader.
            let stats_ref = &stats;
            scope.spawn(move || loop {
                let t0 = Instant::now();
                let batch = read_batch();
                stats_ref.lock().unwrap().in_seconds += t0.elapsed().as_secs_f64();
                match batch {
                    Some(b) => {
                        if in_tx.send(b).is_err() {
                            break;
                        }
                    }
                    None => break, // dropping in_tx closes the channel
                }
            });

            // Writer.
            let stats_ref = &stats;
            let writer = scope.spawn(move || {
                while let Ok(out) = out_rx.recv() {
                    let t0 = Instant::now();
                    write_batch(out);
                    stats_ref.lock().unwrap().out_seconds += t0.elapsed().as_secs_f64();
                }
            });

            // Compute stage on this thread; workers persist across batches.
            while let Ok(batch) = in_rx.recv() {
                let t0 = Instant::now();
                let order = if sort_by_len {
                    sort_indices_by_len_desc(&batch, &len_of)
                } else {
                    (0..batch.len()).collect()
                };
                let results = pool.run_batch(&batch, &order);
                {
                    let mut s = stats.lock().unwrap();
                    s.compute_seconds += t0.elapsed().as_secs_f64();
                    s.batches += 1;
                    s.items += batch.len();
                }
                if out_tx.send(results).is_err() {
                    break;
                }
            }
            drop(out_tx);
            writer.join().expect("writer thread");
        });
    });

    let mut s = stats.into_inner().unwrap();
    s.wall_seconds = wall.elapsed().as_secs_f64();
    s
}

/// Stateless convenience wrapper around [`run_three_thread_with_state`],
/// keeping the original `mmm-pipeline` signature.
pub fn run_three_thread<I, R, FIn, FMap, FLen, FOut>(
    read_batch: FIn,
    map: FMap,
    len_of: FLen,
    write_batch: FOut,
    threads: usize,
    sort_by_len: bool,
) -> PipelineStats
where
    I: Send + Sync,
    R: Send,
    FIn: FnMut() -> Option<Vec<I>> + Send,
    FMap: Fn(&I) -> R + Sync,
    FLen: Fn(&I) -> usize + Sync,
    FOut: FnMut(Vec<R>) + Send,
{
    run_three_thread_with_state(
        read_batch,
        |_| (),
        |(), item| map(item),
        len_of,
        write_batch,
        threads,
        sort_by_len,
    )
}

/// minimap2's 2-thread design: two pipeline slots alternate batches, each
/// running load → compute → output sequentially; the compute sections are
/// mutually exclusive (they use the whole worker pool), so one slot's
/// compute overlaps the other slot's I/O only.
pub fn run_two_thread_with_state<I, R, S, FIn, FState, FMap, FOut>(
    read_batch: FIn,
    make_state: FState,
    map: FMap,
    write_batch: FOut,
    threads: usize,
) -> PipelineStats
where
    I: Send + Sync,
    R: Send,
    FIn: FnMut() -> Option<Vec<I>> + Send,
    FState: Fn(usize) -> S + Sync,
    FMap: Fn(&mut S, &I) -> R + Sync,
    FOut: FnMut(Vec<R>) + Send,
{
    let stats = Mutex::new(PipelineStats::default());
    let wall = Instant::now();
    // Shared, locked resources mirroring the design's constraints. Batch ids
    // are handed out under the reader lock — and only when the read actually
    // produced a batch, so end-of-input never consumes an id (a consumed id
    // with no batch behind it would wedge the in-order writer below).
    let reader = Mutex::new((read_batch, 0usize)); // (source, next batch id)
    let writer = Mutex::new((write_batch, 0usize)); // (sink, next batch id)
    let writer_turn = Condvar::new();
    let compute = Mutex::new(());

    with_worker_pool(threads, make_state, map, |pool| {
        std::thread::scope(|scope| {
            for _slot in 0..2 {
                scope.spawn(|| loop {
                    // Load (serialized on the reader).
                    let (my_id, batch) = {
                        let mut rd = reader.lock().unwrap();
                        let t0 = Instant::now();
                        let b = (rd.0)();
                        stats.lock().unwrap().in_seconds += t0.elapsed().as_secs_f64();
                        match b {
                            Some(b) => {
                                let my = rd.1;
                                rd.1 += 1;
                                (my, b)
                            }
                            None => break,
                        }
                    };
                    // Compute (exclusive: uses the whole worker pool).
                    let results = {
                        let _guard = compute.lock().unwrap();
                        let t0 = Instant::now();
                        let order: Vec<usize> = (0..batch.len()).collect();
                        let r = pool.run_batch(&batch, &order);
                        let mut s = stats.lock().unwrap();
                        s.compute_seconds += t0.elapsed().as_secs_f64();
                        s.batches += 1;
                        s.items += batch.len();
                        r
                    };
                    // Output in batch order, sleeping (not spinning) until
                    // it is this batch's turn.
                    let mut w = writer.lock().unwrap();
                    while w.1 != my_id {
                        w = writer_turn.wait(w).unwrap();
                    }
                    let t0 = Instant::now();
                    (w.0)(results);
                    w.1 += 1;
                    writer_turn.notify_all();
                    stats.lock().unwrap().out_seconds += t0.elapsed().as_secs_f64();
                });
            }
        });
    });

    let mut s = stats.into_inner().unwrap();
    s.wall_seconds = wall.elapsed().as_secs_f64();
    s
}

/// Stateless convenience wrapper around [`run_two_thread_with_state`],
/// keeping the original `mmm-pipeline` signature.
pub fn run_two_thread<I, R, FIn, FMap, FOut>(
    read_batch: FIn,
    map: FMap,
    write_batch: FOut,
    threads: usize,
) -> PipelineStats
where
    I: Send + Sync,
    R: Send,
    FIn: FnMut() -> Option<Vec<I>> + Send,
    FMap: Fn(&I) -> R + Sync,
    FOut: FnMut(Vec<R>) + Send,
{
    run_two_thread_with_state(
        read_batch,
        |_| (),
        |(), item| map(item),
        write_batch,
        threads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batches(n_batches: usize, per: usize) -> Vec<Vec<u64>> {
        (0..n_batches)
            .map(|b| (0..per as u64).map(|i| b as u64 * 1000 + i).collect())
            .collect()
    }

    fn feeder(mut data: Vec<Vec<u64>>) -> impl FnMut() -> Option<Vec<u64>> + Send {
        data.reverse();
        move || data.pop()
    }

    #[test]
    fn three_thread_preserves_order() {
        let input = batches(6, 40);
        let flat: Vec<u64> = input.iter().flatten().copied().collect();
        let out = Mutex::new(Vec::new());
        let stats = run_three_thread(
            feeder(input),
            |&x| x * 3,
            |_| 1,
            |r| out.lock().unwrap().extend(r),
            4,
            false,
        );
        assert_eq!(stats.batches, 6);
        assert_eq!(stats.items, 240);
        let got = out.into_inner().unwrap();
        assert_eq!(got, flat.iter().map(|x| x * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn three_thread_sorted_compute_still_ordered_output() {
        let input = vec![vec![5u64, 1, 9, 3], vec![2, 8]];
        let out = Mutex::new(Vec::new());
        run_three_thread(
            feeder(input),
            |&x| x + 1,
            |&x| x as usize, // "length" = value, so compute order differs
            |r| out.lock().unwrap().extend(r),
            3,
            true,
        );
        assert_eq!(out.into_inner().unwrap(), vec![6, 2, 10, 4, 3, 9]);
    }

    #[test]
    fn two_thread_preserves_order() {
        let input = batches(7, 33);
        let flat: Vec<u64> = input.iter().flatten().copied().collect();
        let out = Mutex::new(Vec::new());
        let stats = run_two_thread(
            feeder(input),
            |&x| x ^ 7,
            |r| out.lock().unwrap().extend(r),
            4,
        );
        assert_eq!(stats.batches, 7);
        assert_eq!(
            out.into_inner().unwrap(),
            flat.iter().map(|x| x ^ 7).collect::<Vec<u64>>()
        );
    }

    #[test]
    fn empty_stream() {
        let out = Mutex::new(Vec::<u64>::new());
        let stats = run_three_thread(
            feeder(vec![]),
            |&x: &u64| x,
            |_| 1,
            |r| out.lock().unwrap().extend(r),
            2,
            true,
        );
        assert_eq!(stats.batches, 0);
        assert!(out.into_inner().unwrap().is_empty());
    }

    #[test]
    fn both_designs_agree() {
        let input = batches(5, 21);
        let a = {
            let out = Mutex::new(Vec::new());
            run_three_thread(
                feeder(input.clone()),
                |&x| x * x,
                |_| 1,
                |r| out.lock().unwrap().extend(r),
                3,
                true,
            );
            out.into_inner().unwrap()
        };
        let b = {
            let out = Mutex::new(Vec::new());
            run_two_thread(
                feeder(input),
                |&x| x * x,
                |r| out.lock().unwrap().extend(r),
                3,
            );
            out.into_inner().unwrap()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn stateful_three_thread_threads_state_through_workers() {
        let input = batches(8, 25);
        let flat: Vec<u64> = input.iter().flatten().copied().collect();
        let out = Mutex::new(Vec::new());
        let stats = run_three_thread_with_state(
            feeder(input),
            |widx| (widx, 0u64), // per-worker scratch: (id, items served)
            |st: &mut (usize, u64), &x: &u64| {
                st.1 += 1;
                x * 2
            },
            |_| 1,
            |r| out.lock().unwrap().extend(r),
            3,
            true,
        );
        assert_eq!(stats.items, 200);
        assert_eq!(
            out.into_inner().unwrap(),
            flat.iter().map(|x| x * 2).collect::<Vec<u64>>()
        );
    }

    #[test]
    fn two_thread_stops_cleanly_at_end_of_input() {
        // A source that keeps returning None after the end must not wedge
        // the in-order writer (regression: EOF used to consume a batch id).
        for _ in 0..20 {
            let mut remaining = 3;
            let read = move || {
                if remaining == 0 {
                    None
                } else {
                    remaining -= 1;
                    Some(vec![remaining as u64])
                }
            };
            let out = Mutex::new(Vec::new());
            let stats = run_two_thread(read, |&x| x, |r| out.lock().unwrap().extend(r), 2);
            assert_eq!(stats.batches, 3);
            assert_eq!(out.into_inner().unwrap(), vec![2, 1, 0]);
        }
    }
}
