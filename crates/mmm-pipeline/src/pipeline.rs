//! The two pipeline designs.
//!
//! Each design comes in two flavors: a fallible `try_*` entry point where
//! the read/write stages return `Result` and worker panics are caught (the
//! real pipelines, used by the CLI), and the original infallible signature,
//! now a thin wrapper that panics on failure (used by tests and benches
//! whose stages cannot fail).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

use crate::error::{DynError, PipelineError};
use crate::pool::{with_worker_pool, BatchOutcome};
use crate::sort::sort_indices_by_len_desc;
use crate::sync::{lock_unpoisoned, wait_unpoisoned};

/// Aggregate timings of a pipeline run. Stage seconds are summed across
/// batches (stages overlap, so they may exceed `wall_seconds`).
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineStats {
    pub batches: usize,
    pub items: usize,
    /// Items whose worker panicked and that were degraded through the
    /// `on_item_panic` handler instead of producing a real result.
    pub failed_items: usize,
    pub in_seconds: f64,
    pub compute_seconds: f64,
    pub out_seconds: f64,
    pub wall_seconds: f64,
}

/// Handler invoked for an item whose worker panicked: receives the item and
/// the panic message, returns the substitute result (e.g. an "unmapped"
/// record). Installing one turns worker panics into per-item degradation;
/// without one the first panic aborts the run with
/// [`PipelineError::WorkerPanic`].
pub type PanicHandler<'a, I, R> = Option<&'a (dyn Fn(&I, &str) -> R + Sync)>;

fn record_error(slot: &Mutex<Option<PipelineError>>, e: PipelineError) {
    let mut g = lock_unpoisoned(slot);
    if g.is_none() {
        *g = Some(e);
    }
}

/// Substitute handler results for panicked items, or produce the fatal
/// error if no handler is installed. Returns `Err(fatal)` to abort.
fn settle_batch<I, R>(
    batch: &[I],
    outcome: BatchOutcome<R>,
    on_item_panic: PanicHandler<'_, I, R>,
) -> Result<(Vec<R>, usize), PipelineError> {
    let BatchOutcome {
        mut results,
        panics,
    } = outcome;
    let failed = panics.len();
    if !panics.is_empty() {
        match on_item_panic {
            Some(handler) => {
                for p in &panics {
                    results[p.index] = Some(handler(&batch[p.index], &p.message));
                }
            }
            None => {
                let p = &panics[0];
                return Err(PipelineError::WorkerPanic {
                    item_index: p.index,
                    message: p.message.clone(),
                });
            }
        }
    }
    // Every `None` slot carries a panic entry (the pool synthesizes one),
    // so after substitution the flatten drops nothing.
    Ok((results.into_iter().flatten().collect(), failed))
}

fn finish(
    stats: Mutex<PipelineStats>,
    failure: Mutex<Option<PipelineError>>,
    wall: Instant,
) -> Result<PipelineStats, PipelineError> {
    if let Some(e) = lock_unpoisoned(&failure).take() {
        return Err(e);
    }
    let mut s = stats.into_inner().unwrap_or_else(PoisonError::into_inner);
    s.wall_seconds = wall.elapsed().as_secs_f64();
    Ok(s)
}

/// manymap's 3-thread design: a reader thread, the compute stage (persistent
/// worker pool), and a writer thread, connected by bounded channels so input
/// and output overlap computation *and* each other.
///
/// * `read_batch` returns the next batch, `Ok(None)` at end of input, or an
///   error that stops the run with [`PipelineError::Read`];
/// * each of the `threads` workers builds one private state with
///   `make_state(worker_idx)` when the pool starts (e.g. an alignment
///   scratch arena) and keeps it for the whole run;
/// * `map` is applied to every item (longest-first when `sort_by_len` is
///   set, via `len_of`); a panic in `map` is caught per item and handled by
///   `on_item_panic` (see [`PanicHandler`]);
/// * `write_batch` consumes results in batch order; an error stops the run
///   with [`PipelineError::Write`].
///
/// On error the pipeline shuts down promptly and cleanly: no deadlock, no
/// poisoned stats, and the first failure is the one reported.
#[allow(clippy::too_many_arguments)]
pub fn try_run_three_thread_with_state<I, R, S, FIn, FState, FMap, FLen, FOut>(
    mut read_batch: FIn,
    make_state: FState,
    map: FMap,
    len_of: FLen,
    mut write_batch: FOut,
    on_item_panic: PanicHandler<'_, I, R>,
    threads: usize,
    sort_by_len: bool,
) -> Result<PipelineStats, PipelineError>
where
    I: Send + Sync,
    R: Send,
    FIn: FnMut() -> Result<Option<Vec<I>>, DynError> + Send,
    FState: Fn(usize) -> S + Sync,
    FMap: Fn(&mut S, &I) -> R + Sync,
    FLen: Fn(&I) -> usize + Sync,
    FOut: FnMut(Vec<R>) -> Result<(), DynError> + Send,
{
    let stats = Mutex::new(PipelineStats::default());
    let failure = Mutex::new(None::<PipelineError>);
    let wall = Instant::now();

    with_worker_pool(threads, make_state, map, |pool| {
        let (in_tx, in_rx) = sync_channel::<Vec<I>>(2);
        let (out_tx, out_rx) = sync_channel::<Vec<R>>(2);

        std::thread::scope(|scope| {
            // Reader.
            let stats_ref = &stats;
            let failure_ref = &failure;
            scope.spawn(move || loop {
                let t0 = Instant::now();
                let batch = read_batch();
                lock_unpoisoned(stats_ref).in_seconds += t0.elapsed().as_secs_f64();
                match batch {
                    Ok(Some(b)) => {
                        if in_tx.send(b).is_err() {
                            break;
                        }
                    }
                    Ok(None) => break, // dropping in_tx closes the channel
                    Err(e) => {
                        record_error(failure_ref, PipelineError::Read(e));
                        break;
                    }
                }
            });

            // Writer.
            let writer = scope.spawn(move || {
                while let Ok(out) = out_rx.recv() {
                    let t0 = Instant::now();
                    let r = write_batch(out);
                    lock_unpoisoned(stats_ref).out_seconds += t0.elapsed().as_secs_f64();
                    if let Err(e) = r {
                        record_error(failure_ref, PipelineError::Write(e));
                        break; // dropping out_rx fails the compute send
                    }
                }
            });

            // Compute stage on this thread; workers persist across batches.
            let in_rx = in_rx; // owned here so it can be dropped early below
            while let Ok(batch) = in_rx.recv() {
                let t0 = Instant::now();
                let order = if sort_by_len {
                    sort_indices_by_len_desc(&batch, &len_of)
                } else {
                    (0..batch.len()).collect()
                };
                let outcome = pool.run_batch_catching(&batch, &order);
                let settled = settle_batch(&batch, outcome, on_item_panic);
                let results = match settled {
                    Ok((results, failed)) => {
                        let mut s = lock_unpoisoned(&stats);
                        s.compute_seconds += t0.elapsed().as_secs_f64();
                        s.batches += 1;
                        s.items += batch.len();
                        s.failed_items += failed;
                        results
                    }
                    Err(fatal) => {
                        record_error(&failure, fatal);
                        break;
                    }
                };
                if out_tx.send(results).is_err() {
                    break;
                }
            }
            // Unblock the reader (its send fails once the channel is gone)
            // and close the writer's input, then surface writer panics.
            drop(in_rx);
            drop(out_tx);
            if let Err(payload) = writer.join() {
                std::panic::resume_unwind(payload);
            }
        });
    });

    finish(stats, failure, wall)
}

/// Infallible wrapper around [`try_run_three_thread_with_state`] keeping the
/// original signature: stages cannot fail, and a worker panic is re-raised
/// on the calling thread with the item index attached.
pub fn run_three_thread_with_state<I, R, S, FIn, FState, FMap, FLen, FOut>(
    mut read_batch: FIn,
    make_state: FState,
    map: FMap,
    len_of: FLen,
    mut write_batch: FOut,
    threads: usize,
    sort_by_len: bool,
) -> PipelineStats
where
    I: Send + Sync,
    R: Send,
    FIn: FnMut() -> Option<Vec<I>> + Send,
    FState: Fn(usize) -> S + Sync,
    FMap: Fn(&mut S, &I) -> R + Sync,
    FLen: Fn(&I) -> usize + Sync,
    FOut: FnMut(Vec<R>) + Send,
{
    match try_run_three_thread_with_state(
        move || Ok(read_batch()),
        make_state,
        map,
        len_of,
        move |r| {
            write_batch(r);
            Ok(())
        },
        None,
        threads,
        sort_by_len,
    ) {
        Ok(s) => s,
        Err(e @ PipelineError::WorkerPanic { .. }) => panic!("{e}"),
        // The wrapped stages never return errors.
        Err(e) => panic!("infallible pipeline stage failed: {e}"),
    }
}

/// Stateless convenience wrapper around [`run_three_thread_with_state`],
/// keeping the original `mmm-pipeline` signature.
pub fn run_three_thread<I, R, FIn, FMap, FLen, FOut>(
    read_batch: FIn,
    map: FMap,
    len_of: FLen,
    write_batch: FOut,
    threads: usize,
    sort_by_len: bool,
) -> PipelineStats
where
    I: Send + Sync,
    R: Send,
    FIn: FnMut() -> Option<Vec<I>> + Send,
    FMap: Fn(&I) -> R + Sync,
    FLen: Fn(&I) -> usize + Sync,
    FOut: FnMut(Vec<R>) + Send,
{
    run_three_thread_with_state(
        read_batch,
        |_| (),
        |(), item| map(item),
        len_of,
        write_batch,
        threads,
        sort_by_len,
    )
}

/// minimap2's 2-thread design: two pipeline slots alternate batches, each
/// running load → compute → output sequentially; the compute sections are
/// mutually exclusive (they use the whole worker pool), so one slot's
/// compute overlaps the other slot's I/O only.
///
/// Fault semantics match [`try_run_three_thread_with_state`]. A failing slot
/// raises a shared abort flag (and wakes any slot parked on the in-order
/// writer condvar) so the run always terminates — a batch id that will never
/// be written cannot wedge the other slot.
pub fn try_run_two_thread_with_state<I, R, S, FIn, FState, FMap, FOut>(
    read_batch: FIn,
    make_state: FState,
    map: FMap,
    write_batch: FOut,
    on_item_panic: PanicHandler<'_, I, R>,
    threads: usize,
) -> Result<PipelineStats, PipelineError>
where
    I: Send + Sync,
    R: Send,
    FIn: FnMut() -> Result<Option<Vec<I>>, DynError> + Send,
    FState: Fn(usize) -> S + Sync,
    FMap: Fn(&mut S, &I) -> R + Sync,
    FOut: FnMut(Vec<R>) -> Result<(), DynError> + Send,
{
    let stats = Mutex::new(PipelineStats::default());
    let failure = Mutex::new(None::<PipelineError>);
    let wall = Instant::now();
    // Shared, locked resources mirroring the design's constraints. Batch ids
    // are handed out under the reader lock — and only when the read actually
    // produced a batch, so end-of-input never consumes an id (a consumed id
    // with no batch behind it would wedge the in-order writer below).
    let reader = Mutex::new((read_batch, 0usize)); // (source, next batch id)
    let writer = Mutex::new((write_batch, 0usize)); // (sink, next batch id)
    let writer_turn = Condvar::new();
    let compute = Mutex::new(());
    let abort = AtomicBool::new(false);

    // Record the first failure and wake every slot parked on the writer
    // condvar. The flag is raised under the writer lock so a slot checking
    // it before waiting cannot miss the wakeup.
    let trigger_abort = |e: PipelineError| {
        record_error(&failure, e);
        let _w = lock_unpoisoned(&writer);
        abort.store(true, Ordering::SeqCst);
        writer_turn.notify_all();
    };

    with_worker_pool(threads, make_state, map, |pool| {
        std::thread::scope(|scope| {
            for _slot in 0..2 {
                scope.spawn(|| loop {
                    if abort.load(Ordering::SeqCst) {
                        break;
                    }
                    // Load (serialized on the reader).
                    let (my_id, batch) = {
                        let mut rd = lock_unpoisoned(&reader);
                        let t0 = Instant::now();
                        let b = (rd.0)();
                        lock_unpoisoned(&stats).in_seconds += t0.elapsed().as_secs_f64();
                        match b {
                            Ok(Some(b)) => {
                                let my = rd.1;
                                rd.1 += 1;
                                (my, b)
                            }
                            Ok(None) => break,
                            Err(e) => {
                                drop(rd);
                                trigger_abort(PipelineError::Read(e));
                                break;
                            }
                        }
                    };
                    // Compute (exclusive: uses the whole worker pool).
                    let settled = {
                        let _guard = lock_unpoisoned(&compute);
                        let t0 = Instant::now();
                        let order: Vec<usize> = (0..batch.len()).collect();
                        let outcome = pool.run_batch_catching(&batch, &order);
                        let settled = settle_batch(&batch, outcome, on_item_panic);
                        if let Ok((_, failed)) = &settled {
                            let mut s = lock_unpoisoned(&stats);
                            s.compute_seconds += t0.elapsed().as_secs_f64();
                            s.batches += 1;
                            s.items += batch.len();
                            s.failed_items += failed;
                        }
                        settled
                    };
                    let results = match settled {
                        Ok((results, _)) => results,
                        Err(fatal) => {
                            trigger_abort(fatal);
                            break;
                        }
                    };
                    // Output in batch order, sleeping (not spinning) until
                    // it is this batch's turn — or the run aborts.
                    let mut w = lock_unpoisoned(&writer);
                    while !abort.load(Ordering::SeqCst) && w.1 != my_id {
                        w = wait_unpoisoned(&writer_turn, w);
                    }
                    if abort.load(Ordering::SeqCst) {
                        break;
                    }
                    let t0 = Instant::now();
                    let r = (w.0)(results);
                    match r {
                        Ok(()) => {
                            w.1 += 1;
                            writer_turn.notify_all();
                            drop(w);
                            lock_unpoisoned(&stats).out_seconds += t0.elapsed().as_secs_f64();
                        }
                        Err(e) => {
                            drop(w);
                            trigger_abort(PipelineError::Write(e));
                            break;
                        }
                    }
                });
            }
        });
    });

    finish(stats, failure, wall)
}

/// Infallible wrapper around [`try_run_two_thread_with_state`] keeping the
/// original signature; a worker panic is re-raised on the calling thread.
pub fn run_two_thread_with_state<I, R, S, FIn, FState, FMap, FOut>(
    mut read_batch: FIn,
    make_state: FState,
    map: FMap,
    mut write_batch: FOut,
    threads: usize,
) -> PipelineStats
where
    I: Send + Sync,
    R: Send,
    FIn: FnMut() -> Option<Vec<I>> + Send,
    FState: Fn(usize) -> S + Sync,
    FMap: Fn(&mut S, &I) -> R + Sync,
    FOut: FnMut(Vec<R>) + Send,
{
    match try_run_two_thread_with_state(
        move || Ok(read_batch()),
        make_state,
        map,
        move |r| {
            write_batch(r);
            Ok(())
        },
        None,
        threads,
    ) {
        Ok(s) => s,
        Err(e @ PipelineError::WorkerPanic { .. }) => panic!("{e}"),
        // The wrapped stages never return errors.
        Err(e) => panic!("infallible pipeline stage failed: {e}"),
    }
}

/// Stateless convenience wrapper around [`run_two_thread_with_state`],
/// keeping the original `mmm-pipeline` signature.
pub fn run_two_thread<I, R, FIn, FMap, FOut>(
    read_batch: FIn,
    map: FMap,
    write_batch: FOut,
    threads: usize,
) -> PipelineStats
where
    I: Send + Sync,
    R: Send,
    FIn: FnMut() -> Option<Vec<I>> + Send,
    FMap: Fn(&I) -> R + Sync,
    FOut: FnMut(Vec<R>) + Send,
{
    run_two_thread_with_state(
        read_batch,
        |_| (),
        |(), item| map(item),
        write_batch,
        threads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batches(n_batches: usize, per: usize) -> Vec<Vec<u64>> {
        (0..n_batches)
            .map(|b| (0..per as u64).map(|i| b as u64 * 1000 + i).collect())
            .collect()
    }

    fn feeder(mut data: Vec<Vec<u64>>) -> impl FnMut() -> Option<Vec<u64>> + Send {
        data.reverse();
        move || data.pop()
    }

    #[test]
    fn three_thread_preserves_order() {
        let input = batches(6, 40);
        let flat: Vec<u64> = input.iter().flatten().copied().collect();
        let out = Mutex::new(Vec::new());
        let stats = run_three_thread(
            feeder(input),
            |&x| x * 3,
            |_| 1,
            |r| out.lock().unwrap().extend(r),
            4,
            false,
        );
        assert_eq!(stats.batches, 6);
        assert_eq!(stats.items, 240);
        assert_eq!(stats.failed_items, 0);
        let got = out.into_inner().unwrap();
        assert_eq!(got, flat.iter().map(|x| x * 3).collect::<Vec<u64>>());
    }

    #[test]
    fn three_thread_sorted_compute_still_ordered_output() {
        let input = vec![vec![5u64, 1, 9, 3], vec![2, 8]];
        let out = Mutex::new(Vec::new());
        run_three_thread(
            feeder(input),
            |&x| x + 1,
            |&x| x as usize, // "length" = value, so compute order differs
            |r| out.lock().unwrap().extend(r),
            3,
            true,
        );
        assert_eq!(out.into_inner().unwrap(), vec![6, 2, 10, 4, 3, 9]);
    }

    #[test]
    fn two_thread_preserves_order() {
        let input = batches(7, 33);
        let flat: Vec<u64> = input.iter().flatten().copied().collect();
        let out = Mutex::new(Vec::new());
        let stats = run_two_thread(
            feeder(input),
            |&x| x ^ 7,
            |r| out.lock().unwrap().extend(r),
            4,
        );
        assert_eq!(stats.batches, 7);
        assert_eq!(
            out.into_inner().unwrap(),
            flat.iter().map(|x| x ^ 7).collect::<Vec<u64>>()
        );
    }

    #[test]
    fn empty_stream() {
        let out = Mutex::new(Vec::<u64>::new());
        let stats = run_three_thread(
            feeder(vec![]),
            |&x: &u64| x,
            |_| 1,
            |r| out.lock().unwrap().extend(r),
            2,
            true,
        );
        assert_eq!(stats.batches, 0);
        assert!(out.into_inner().unwrap().is_empty());
    }

    #[test]
    fn both_designs_agree() {
        let input = batches(5, 21);
        let a = {
            let out = Mutex::new(Vec::new());
            run_three_thread(
                feeder(input.clone()),
                |&x| x * x,
                |_| 1,
                |r| out.lock().unwrap().extend(r),
                3,
                true,
            );
            out.into_inner().unwrap()
        };
        let b = {
            let out = Mutex::new(Vec::new());
            run_two_thread(
                feeder(input),
                |&x| x * x,
                |r| out.lock().unwrap().extend(r),
                3,
            );
            out.into_inner().unwrap()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn stateful_three_thread_threads_state_through_workers() {
        let input = batches(8, 25);
        let flat: Vec<u64> = input.iter().flatten().copied().collect();
        let out = Mutex::new(Vec::new());
        let stats = run_three_thread_with_state(
            feeder(input),
            |widx| (widx, 0u64), // per-worker scratch: (id, items served)
            |st: &mut (usize, u64), &x: &u64| {
                st.1 += 1;
                x * 2
            },
            |_| 1,
            |r| out.lock().unwrap().extend(r),
            3,
            true,
        );
        assert_eq!(stats.items, 200);
        assert_eq!(
            out.into_inner().unwrap(),
            flat.iter().map(|x| x * 2).collect::<Vec<u64>>()
        );
    }

    #[test]
    fn two_thread_stops_cleanly_at_end_of_input() {
        // A source that keeps returning None after the end must not wedge
        // the in-order writer (regression: EOF used to consume a batch id).
        for _ in 0..20 {
            let mut remaining = 3;
            let read = move || {
                if remaining == 0 {
                    None
                } else {
                    remaining -= 1;
                    Some(vec![remaining as u64])
                }
            };
            let out = Mutex::new(Vec::new());
            let stats = run_two_thread(read, |&x| x, |r| out.lock().unwrap().extend(r), 2);
            assert_eq!(stats.batches, 3);
            assert_eq!(out.into_inner().unwrap(), vec![2, 1, 0]);
        }
    }
}
