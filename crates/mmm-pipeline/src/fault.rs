//! Fault-injection adapters for the pipeline robustness suite.
//!
//! These wrap caller-supplied stage callbacks to fail deterministically, so
//! tests can drive every degradation path of the fallible pipelines: a
//! reader that errors on the k-th batch, and a map stage that panics on
//! chosen items. (Byte-level faults live in `mmm_io::FaultSource`.)

use crate::error::DynError;

/// Wrap a batch reader so every `every`-th call (1-based) returns an error
/// instead of a batch. With `every = 3` the reader yields two real batches,
/// then fails.
pub fn failing_every<I, F>(
    mut read: F,
    every: usize,
) -> impl FnMut() -> Result<Option<Vec<I>>, DynError> + Send
where
    F: FnMut() -> Result<Option<Vec<I>>, DynError> + Send,
{
    let every = every.max(1);
    let mut calls = 0usize;
    move || {
        calls += 1;
        if calls.is_multiple_of(every) {
            Err(format!("injected reader fault at batch {calls}").into())
        } else {
            read()
        }
    }
}

/// Wrap a map stage so items selected by `should_panic` panic instead of
/// producing a result — a stand-in for a latent bug tripping on one read.
pub fn panicking_map<S, I, R, M, P>(map: M, should_panic: P) -> impl Fn(&mut S, &I) -> R + Sync
where
    M: Fn(&mut S, &I) -> R + Sync,
    P: Fn(&I) -> bool + Sync,
{
    move |state, item| {
        if should_panic(item) {
            panic!("injected worker panic");
        }
        map(state, item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failing_every_counts_calls() {
        let mut batches = vec![vec![1u32], vec![2], vec![3]];
        batches.reverse();
        let mut r = failing_every(move || Ok(batches.pop()), 3);
        assert_eq!(r().unwrap(), Some(vec![1]));
        assert_eq!(r().unwrap(), Some(vec![2]));
        let err = r().unwrap_err();
        assert!(err.to_string().contains("batch 3"), "{err}");
    }

    #[test]
    fn panicking_map_passes_through() {
        let m = panicking_map(|(), &x: &u32| x * 2, |&x| x == 9);
        assert_eq!(m(&mut (), &4), 8);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m(&mut (), &9)));
        assert!(caught.is_err());
    }
}
