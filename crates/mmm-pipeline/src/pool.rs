//! The persistent worker pool.
//!
//! The pool spawns its threads **once per pipeline run** and feeds them one
//! batch at a time; this replaces the original per-batch scoped-spawn design,
//! which paid a thread spawn/join plus one `Mutex<Option<R>>` allocation per
//! item on every batch. Each worker owns a private mutable state value built
//! by a caller-supplied factory (the mapper passes an alignment scratch
//! arena, see `mmm-align`'s `AlignScratch`), so the hot loop runs with zero
//! per-item allocation or locking: indices are claimed with a single
//! `fetch_add` and results land in a pre-sized `Vec<Option<R>>` through
//! index-disjoint writes.
//!
//! # Batch protocol
//!
//! [`WorkerPool::run_batch`] publishes a *job* — raw pointers to the batch
//! items, the processing order, and the results buffer — under a mutex,
//! stamped with a fresh epoch, and wakes the workers. Workers drain the index
//! counter, write their results, and *check in*; the submitter returns only
//! once every worker has checked in for the epoch. That check-in barrier is
//! what makes the lifetime-erased pointers sound: no worker can still hold a
//! stale job (or touch the shared index counter for an old epoch) after
//! `run_batch` returns, so the borrowed batch may be freed immediately.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use crate::sync::{lock_unpoisoned, wait_unpoisoned};

/// A panic caught while a worker processed one item.
#[derive(Clone, Debug)]
pub struct ItemPanic {
    /// Original index of the item in the submitted batch.
    pub index: usize,
    /// The panic payload, if it was a string (the common case).
    pub message: String,
}

/// Outcome of [`WorkerPool::run_batch_catching`]: per-item results in
/// original order, plus any panics caught along the way. An item whose
/// worker panicked has `None` in `results` and an entry in `panics`.
#[derive(Debug)]
pub struct BatchOutcome<R> {
    pub results: Vec<Option<R>>,
    pub panics: Vec<ItemPanic>,
}

/// Render a panic payload as a message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A published batch: lifetime-erased views of the submitter's borrows.
///
/// Validity is enforced by the check-in barrier in
/// [`WorkerPool::run_batch`], which outlives every worker's use of these
/// pointers.
struct Job<I, R> {
    items: *const I,
    order: *const usize,
    len: usize,
    results: *mut Option<R>,
}

impl<I, R> Clone for Job<I, R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<I, R> Copy for Job<I, R> {}

// SAFETY: a `Job` hands workers shared `&I` access (hence `I: Sync`) and
// moves produced `R` values across threads (hence `R: Send`). The pointers
// themselves stay valid for the whole time any worker can observe the job
// (check-in barrier).
unsafe impl<I: Sync, R: Send> Send for Job<I, R> {}

struct Slot<I, R> {
    /// Bumped once per published batch; workers pick up a job when the
    /// epoch differs from the last one they served.
    epoch: u64,
    /// Number of workers that finished serving the current epoch.
    checked_in: usize,
    shutdown: bool,
    job: Option<Job<I, R>>,
    /// Panics caught while serving the current epoch; drained by the
    /// submitter after the check-in barrier.
    panics: Vec<ItemPanic>,
}

struct Shared<I, R> {
    slot: Mutex<Slot<I, R>>,
    /// Workers wait here for a new epoch or shutdown.
    work_cv: Condvar,
    /// The submitter waits here for all workers to check in.
    done_cv: Condvar,
    /// Next unclaimed position in `order`; reset before each publish.
    next: AtomicUsize,
    /// Total threads ever spawned — observable proof that the pool spawns
    /// once per run, not once per batch.
    spawned: AtomicUsize,
}

impl<I, R> Shared<I, R> {
    fn new() -> Self {
        Shared {
            slot: Mutex::new(Slot {
                epoch: 0,
                checked_in: 0,
                shutdown: false,
                job: None,
                panics: Vec::new(),
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
            spawned: AtomicUsize::new(0),
        }
    }
}

/// Handle to a running pool, passed to the body closure of
/// [`with_worker_pool`]. Submit batches with [`run_batch`](Self::run_batch).
pub struct WorkerPool<'a, I, R> {
    shared: &'a Shared<I, R>,
    threads: usize,
}

impl<I: Sync, R: Send> WorkerPool<'_, I, R> {
    /// Number of worker threads serving this pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total worker threads spawned since the pool started. Stays equal to
    /// [`threads`](Self::threads) no matter how many batches run.
    pub fn threads_spawned(&self) -> usize {
        self.shared.spawned.load(Ordering::Relaxed)
    }

    /// Map the pool's function over `items`, processing in the order given
    /// by `order` (e.g. longest first) but returning results in the original
    /// item order. Blocks until the batch is complete.
    ///
    /// A panic in the mapped function is caught per item: the batch still
    /// completes, the panicked item's slot is `None`, and the panic message
    /// (with the item's index) is reported in [`BatchOutcome::panics`]. The
    /// pool itself never deadlocks or poisons on a worker panic.
    pub fn run_batch_catching(&self, items: &[I], order: &[usize]) -> BatchOutcome<R> {
        assert_eq!(
            items.len(),
            order.len(),
            "order must be a permutation of the items"
        );
        if items.is_empty() {
            return BatchOutcome {
                results: Vec::new(),
                panics: Vec::new(),
            };
        }
        let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
        results.resize_with(items.len(), || None);

        // Publish. The counter reset is ordered before the epoch bump by the
        // mutex acquire in every worker's pickup path.
        self.shared.next.store(0, Ordering::Relaxed);
        {
            let mut g = lock_unpoisoned(&self.shared.slot);
            g.epoch += 1;
            g.checked_in = 0;
            g.panics.clear();
            g.job = Some(Job {
                items: items.as_ptr(),
                order: order.as_ptr(),
                len: items.len(),
                results: results.as_mut_ptr(),
            });
            self.shared.work_cv.notify_all();
        }

        // Check-in barrier: every worker must finish serving this epoch
        // before the borrows behind the job pointers can be released.
        let mut panics = {
            let mut g = lock_unpoisoned(&self.shared.slot);
            while g.checked_in != self.threads {
                g = wait_unpoisoned(&self.shared.done_cv, g);
            }
            g.job = None;
            std::mem::take(&mut g.panics)
        };

        // A worker that failed to rebuild its state abandons claimed items
        // without a recorded panic; surface those holes too so callers can
        // always account for every item.
        for (i, r) in results.iter().enumerate() {
            if r.is_none() && !panics.iter().any(|p| p.index == i) {
                panics.push(ItemPanic {
                    index: i,
                    message: "item abandoned after a worker failed to rebuild its state".into(),
                });
            }
        }
        panics.sort_by_key(|p| p.index);
        BatchOutcome { results, panics }
    }

    /// Panic-propagating wrapper around
    /// [`run_batch_catching`](Self::run_batch_catching): any worker panic is
    /// re-raised on the submitting thread with the item index attached.
    pub fn run_batch(&self, items: &[I], order: &[usize]) -> Vec<R> {
        let BatchOutcome { results, panics } = self.run_batch_catching(items, order);
        if let Some(p) = panics.first() {
            panic!(
                "worker panicked while processing item {}: {}",
                p.index, p.message
            );
        }
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| match r {
                Some(v) => v,
                None => panic!("item {i} left unprocessed"),
            })
            .collect()
    }
}

/// Run `body` with a pool of `threads` persistent workers.
///
/// Each worker builds one private state value via `make_state(worker_idx)`
/// when it starts (never again), and processes items with
/// `map(&mut state, &item)`. Threads are joined before this returns; on the
/// way out (including panics in `body`) the pool shuts down cleanly.
pub fn with_worker_pool<I, R, S, T>(
    threads: usize,
    make_state: impl Fn(usize) -> S + Sync,
    map: impl Fn(&mut S, &I) -> R + Sync,
    body: impl FnOnce(&WorkerPool<'_, I, R>) -> T,
) -> T
where
    I: Sync,
    R: Send,
{
    let threads = threads.max(1);
    let shared: Shared<I, R> = Shared::new();

    /// Ensures workers are released even if `body` unwinds.
    struct Shutdown<'a, I, R>(&'a Shared<I, R>);
    impl<I, R> Drop for Shutdown<'_, I, R> {
        fn drop(&mut self) {
            lock_unpoisoned(&self.0.slot).shutdown = true;
            self.0.work_cv.notify_all();
        }
    }

    /// Per-epoch worker check-in that also fires during unwinding.
    struct CheckIn<'a, I, R> {
        shared: &'a Shared<I, R>,
        threads: usize,
    }
    impl<I, R> Drop for CheckIn<'_, I, R> {
        fn drop(&mut self) {
            let mut g = match self.shared.slot.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            g.checked_in += 1;
            if g.checked_in == self.threads {
                self.shared.done_cv.notify_all();
            }
        }
    }

    std::thread::scope(|scope| {
        let shared = &shared;
        for w in 0..threads {
            let make_state = &make_state;
            let map = &map;
            scope.spawn(move || {
                shared.spawned.fetch_add(1, Ordering::Relaxed);
                // A panic in `make_state` leaves the worker state-less; it
                // still checks in every epoch (so batches complete) but
                // claims no items — the rest of the pool covers them.
                let mut state: Option<S> =
                    std::panic::catch_unwind(AssertUnwindSafe(|| make_state(w))).ok();
                let mut seen_epoch = 0u64;
                loop {
                    // Wait for a fresh epoch (or shutdown) and copy its job.
                    let job = {
                        let mut g = lock_unpoisoned(&shared.slot);
                        loop {
                            if g.shutdown {
                                return;
                            }
                            if g.epoch != seen_epoch {
                                seen_epoch = g.epoch;
                                if let Some(j) = g.job {
                                    break j;
                                }
                                // A published epoch always carries a job;
                                // tolerate a missing one by waiting on.
                            }
                            g = wait_unpoisoned(&shared.work_cv, g);
                        }
                    };
                    // Check in even if `map` panics below: a missing check-in
                    // would leave the submitter waiting forever, masking the
                    // panic as a deadlock. (A panicked item leaves its result
                    // slot `None`, which the submitter reports.)
                    let checkin = CheckIn { shared, threads };
                    // Drain the claim counter. Disjoint `idx` values make the
                    // result writes race-free.
                    while state.is_some() {
                        let k = shared.next.fetch_add(1, Ordering::Relaxed);
                        if k >= job.len {
                            break;
                        }
                        // SAFETY: job pointers are valid until every worker
                        // checks in below; `k < len` bounds both reads, and
                        // `order` is a permutation so `idx` is in range and
                        // claimed by exactly one worker.
                        // xtask-allow: raw-ptr-arith — claim-counter distribution needs untracked shared slices; bounds barrier-protected as documented above
                        let idx = unsafe { *job.order.add(k) };
                        let outcome = match state.as_mut() {
                            Some(st) => std::panic::catch_unwind(AssertUnwindSafe(|| {
                                // SAFETY: as above — idx is in range and
                                // uniquely claimed, so the result write is
                                // race-free.
                                unsafe {
                                    // xtask-allow: raw-ptr-arith — uniquely claimed idx, barrier-bounded read
                                    let r = map(st, &*job.items.add(idx));
                                    // xtask-allow: raw-ptr-arith — uniquely claimed idx, race-free write
                                    *job.results.add(idx) = Some(r);
                                }
                            })),
                            None => break,
                        };
                        if let Err(payload) = outcome {
                            lock_unpoisoned(&shared.slot).panics.push(ItemPanic {
                                index: idx,
                                message: panic_message(payload),
                            });
                            // The panic may have left this worker's state
                            // inconsistent — rebuild before the next item.
                            state =
                                std::panic::catch_unwind(AssertUnwindSafe(|| make_state(w))).ok();
                        }
                    }
                    // Check in: the mutex makes this worker's result writes
                    // visible to the submitter observing the count.
                    drop(checkin);
                }
            });
        }

        let guard = Shutdown(shared);
        let pool = WorkerPool { shared, threads };
        let out = body(&pool);
        drop(guard);
        out
    })
}

/// Map `f` over `items` with `threads` workers, processing in the order
/// given by `order` (e.g. longest first) but returning results in the
/// original item order.
///
/// Compatibility wrapper that stands up a pool for a single batch. Pipelines
/// should hold a pool for their whole run via [`with_worker_pool`] instead.
pub fn par_map_indexed<I, R, F>(items: &[I], order: &[usize], threads: usize, f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(&I) -> R + Sync,
{
    assert_eq!(
        items.len(),
        order.len(),
        "order must be a permutation of the items"
    );
    with_worker_pool(
        threads.min(items.len().max(1)),
        |_| (),
        |(), item| f(item),
        |pool| pool.run_batch(items, order),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<u32> = (0..100).collect();
        let order: Vec<usize> = (0..100).rev().collect(); // process backwards
        let out = par_map_indexed(&items, &order, 4, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn single_thread_works() {
        let items = vec![1, 2, 3];
        let order = vec![0, 1, 2];
        assert_eq!(
            par_map_indexed(&items, &order, 1, |&x| x + 1),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = Vec::new();
        let out: Vec<u32> = par_map_indexed(&items, &[], 8, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn mismatched_order_panics() {
        let items = vec![1, 2, 3];
        par_map_indexed(&items, &[0, 1], 2, |&x| x);
    }

    #[test]
    fn pool_reuses_threads_across_batches() {
        let batches: Vec<Vec<u32>> = (0..50).map(|b| (b * 10..b * 10 + 10).collect()).collect();
        with_worker_pool(
            4,
            |_| 0u64, // per-worker state: items served
            |served: &mut u64, &x: &u32| {
                *served += 1;
                x + 1
            },
            |pool| {
                for batch in &batches {
                    let order: Vec<usize> = (0..batch.len()).collect();
                    let out = pool.run_batch(batch, &order);
                    let want: Vec<u32> = batch.iter().map(|x| x + 1).collect();
                    assert_eq!(out, want);
                }
                assert_eq!(pool.threads_spawned(), 4, "threads spawned once per run");
            },
        );
    }

    #[test]
    fn worker_state_is_built_once_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let built = AtomicUsize::new(0);
        with_worker_pool(
            3,
            |_| {
                built.fetch_add(1, Ordering::Relaxed);
            },
            |(), &x: &u32| x,
            |pool| {
                for _ in 0..20 {
                    let items: Vec<u32> = (0..17).collect();
                    let order: Vec<usize> = (0..17).collect();
                    pool.run_batch(&items, &order);
                }
            },
        );
        assert_eq!(built.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn batch_larger_and_smaller_than_pool() {
        with_worker_pool(
            8,
            |_| (),
            |(), &x: &u64| x * x,
            |pool| {
                for n in [1usize, 3, 8, 100] {
                    let items: Vec<u64> = (0..n as u64).collect();
                    let order: Vec<usize> = (0..n).collect();
                    let out = pool.run_batch(&items, &order);
                    assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<u64>>());
                }
            },
        );
    }

    #[test]
    fn worker_panic_is_caught_batch_completes() {
        let items: Vec<u32> = (0..50).collect();
        let order: Vec<usize> = (0..50).collect();
        with_worker_pool(
            4,
            |_| (),
            |(), &x: &u32| {
                if x == 17 {
                    panic!("poison pill {x}");
                }
                x * 2
            },
            |pool| {
                let out = pool.run_batch_catching(&items, &order);
                assert_eq!(out.panics.len(), 1);
                assert_eq!(out.panics[0].index, 17);
                assert!(out.panics[0].message.contains("poison pill 17"));
                assert!(out.results[17].is_none());
                let ok = out.results.iter().filter(|r| r.is_some()).count();
                assert_eq!(ok, 49);
                // The pool survives: the same threads serve another batch.
                let out2 = pool.run_batch_catching(&items[..10], &order[..10]);
                assert!(out2.panics.is_empty());
                assert_eq!(out2.results.iter().filter(|r| r.is_some()).count(), 10);
            },
        );
    }

    #[test]
    #[should_panic(expected = "worker panicked while processing item 3")]
    fn legacy_run_batch_propagates_worker_panic() {
        let items: Vec<u32> = (0..8).collect();
        let order: Vec<usize> = (0..8).collect();
        with_worker_pool(
            2,
            |_| (),
            |(), &x: &u32| {
                if x == 3 {
                    panic!("bad item");
                }
                x
            },
            |pool| pool.run_batch(&items, &order),
        );
    }

    #[test]
    fn state_factory_panic_does_not_deadlock() {
        // Worker 1's state factory always panics; worker 0 carries the load.
        let items: Vec<u32> = (0..20).collect();
        let order: Vec<usize> = (0..20).collect();
        with_worker_pool(
            2,
            |w| {
                if w == 1 {
                    panic!("no state for worker 1");
                }
            },
            |(), &x: &u32| x + 1,
            |pool| {
                let out = pool.run_batch_catching(&items, &order);
                assert!(out.panics.is_empty(), "{:?}", out.panics);
                let vals: Vec<u32> = out.results.into_iter().flatten().collect();
                assert_eq!(vals, (1..=20).collect::<Vec<u32>>());
            },
        );
    }

    #[test]
    fn body_panic_releases_workers() {
        let caught = std::panic::catch_unwind(|| {
            with_worker_pool(
                2,
                |_| (),
                |(), &x: &u32| x,
                |_pool: &WorkerPool<'_, u32, u32>| panic!("body bail"),
            )
        });
        assert!(caught.is_err()); // and no deadlock joining the scope
    }
}
