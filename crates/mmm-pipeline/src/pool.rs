//! The per-batch worker pool.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Map `f` over `items` with `threads` scoped workers, processing in the
/// order given by `order` (e.g. longest first) but returning results in the
/// original item order.
pub fn par_map_indexed<I, R, F>(items: &[I], order: &[usize], threads: usize, f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(&I) -> R + Sync,
{
    assert_eq!(items.len(), order.len(), "order must be a permutation of the items");
    let threads = threads.max(1);
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads.min(items.len().max(1)) {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= order.len() {
                    break;
                }
                let idx = order[k];
                let r = f(&items[idx]);
                *results[idx].lock() = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|m| m.into_inner().expect("every index processed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<u32> = (0..100).collect();
        let order: Vec<usize> = (0..100).rev().collect(); // process backwards
        let out = par_map_indexed(&items, &order, 4, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn single_thread_works() {
        let items = vec![1, 2, 3];
        let order = vec![0, 1, 2];
        assert_eq!(par_map_indexed(&items, &order, 1, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = Vec::new();
        let out: Vec<u32> = par_map_indexed(&items, &[], 8, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn mismatched_order_panics() {
        let items = vec![1, 2, 3];
        par_map_indexed(&items, &[0, 1], 2, |&x| x);
    }
}
