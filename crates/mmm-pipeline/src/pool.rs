//! The persistent worker pool.
//!
//! The pool spawns its threads **once per pipeline run** and feeds them one
//! batch at a time; this replaces the original per-batch scoped-spawn design,
//! which paid a thread spawn/join plus one `Mutex<Option<R>>` allocation per
//! item on every batch. Each worker owns a private mutable state value built
//! by a caller-supplied factory (the mapper passes an alignment scratch
//! arena, see `mmm-align`'s `AlignScratch`), so the hot loop runs with zero
//! per-item allocation or locking: indices are claimed with a single
//! `fetch_add` and results land in a pre-sized `Vec<Option<R>>` through
//! index-disjoint writes.
//!
//! # Batch protocol
//!
//! [`WorkerPool::run_batch`] publishes a *job* — raw pointers to the batch
//! items, the processing order, and the results buffer — under a mutex,
//! stamped with a fresh epoch, and wakes the workers. Workers drain the index
//! counter, write their results, and *check in*; the submitter returns only
//! once every worker has checked in for the epoch. That check-in barrier is
//! what makes the lifetime-erased pointers sound: no worker can still hold a
//! stale job (or touch the shared index counter for an old epoch) after
//! `run_batch` returns, so the borrowed batch may be freed immediately.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// A published batch: lifetime-erased views of the submitter's borrows.
///
/// Validity is enforced by the check-in barrier in
/// [`WorkerPool::run_batch`], which outlives every worker's use of these
/// pointers.
struct Job<I, R> {
    items: *const I,
    order: *const usize,
    len: usize,
    results: *mut Option<R>,
}

impl<I, R> Clone for Job<I, R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<I, R> Copy for Job<I, R> {}

// SAFETY: a `Job` hands workers shared `&I` access (hence `I: Sync`) and
// moves produced `R` values across threads (hence `R: Send`). The pointers
// themselves stay valid for the whole time any worker can observe the job
// (check-in barrier).
unsafe impl<I: Sync, R: Send> Send for Job<I, R> {}

struct Slot<I, R> {
    /// Bumped once per published batch; workers pick up a job when the
    /// epoch differs from the last one they served.
    epoch: u64,
    /// Number of workers that finished serving the current epoch.
    checked_in: usize,
    shutdown: bool,
    job: Option<Job<I, R>>,
}

struct Shared<I, R> {
    slot: Mutex<Slot<I, R>>,
    /// Workers wait here for a new epoch or shutdown.
    work_cv: Condvar,
    /// The submitter waits here for all workers to check in.
    done_cv: Condvar,
    /// Next unclaimed position in `order`; reset before each publish.
    next: AtomicUsize,
    /// Total threads ever spawned — observable proof that the pool spawns
    /// once per run, not once per batch.
    spawned: AtomicUsize,
}

impl<I, R> Shared<I, R> {
    fn new() -> Self {
        Shared {
            slot: Mutex::new(Slot {
                epoch: 0,
                checked_in: 0,
                shutdown: false,
                job: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next: AtomicUsize::new(0),
            spawned: AtomicUsize::new(0),
        }
    }
}

/// Handle to a running pool, passed to the body closure of
/// [`with_worker_pool`]. Submit batches with [`run_batch`](Self::run_batch).
pub struct WorkerPool<'a, I, R> {
    shared: &'a Shared<I, R>,
    threads: usize,
}

impl<I: Sync, R: Send> WorkerPool<'_, I, R> {
    /// Number of worker threads serving this pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total worker threads spawned since the pool started. Stays equal to
    /// [`threads`](Self::threads) no matter how many batches run.
    pub fn threads_spawned(&self) -> usize {
        self.shared.spawned.load(Ordering::Relaxed)
    }

    /// Map the pool's function over `items`, processing in the order given
    /// by `order` (e.g. longest first) but returning results in the original
    /// item order. Blocks until the batch is complete.
    pub fn run_batch(&self, items: &[I], order: &[usize]) -> Vec<R> {
        assert_eq!(
            items.len(),
            order.len(),
            "order must be a permutation of the items"
        );
        if items.is_empty() {
            return Vec::new();
        }
        let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
        results.resize_with(items.len(), || None);

        // Publish. The counter reset is ordered before the epoch bump by the
        // mutex acquire in every worker's pickup path.
        self.shared.next.store(0, Ordering::Relaxed);
        {
            let mut g = self.shared.slot.lock().unwrap();
            g.epoch += 1;
            g.checked_in = 0;
            g.job = Some(Job {
                items: items.as_ptr(),
                order: order.as_ptr(),
                len: items.len(),
                results: results.as_mut_ptr(),
            });
            self.shared.work_cv.notify_all();
        }

        // Check-in barrier: every worker must finish serving this epoch
        // before the borrows behind the job pointers can be released.
        {
            let mut g = self.shared.slot.lock().unwrap();
            while g.checked_in != self.threads {
                g = self.shared.done_cv.wait(g).unwrap();
            }
            g.job = None;
        }

        results
            .into_iter()
            .map(|r| r.expect("every index processed exactly once"))
            .collect()
    }
}

/// Run `body` with a pool of `threads` persistent workers.
///
/// Each worker builds one private state value via `make_state(worker_idx)`
/// when it starts (never again), and processes items with
/// `map(&mut state, &item)`. Threads are joined before this returns; on the
/// way out (including panics in `body`) the pool shuts down cleanly.
pub fn with_worker_pool<I, R, S, T>(
    threads: usize,
    make_state: impl Fn(usize) -> S + Sync,
    map: impl Fn(&mut S, &I) -> R + Sync,
    body: impl FnOnce(&WorkerPool<'_, I, R>) -> T,
) -> T
where
    I: Sync,
    R: Send,
{
    let threads = threads.max(1);
    let shared: Shared<I, R> = Shared::new();

    /// Ensures workers are released even if `body` unwinds.
    struct Shutdown<'a, I, R>(&'a Shared<I, R>);
    impl<I, R> Drop for Shutdown<'_, I, R> {
        fn drop(&mut self) {
            self.0.slot.lock().unwrap().shutdown = true;
            self.0.work_cv.notify_all();
        }
    }

    /// Per-epoch worker check-in that also fires during unwinding.
    struct CheckIn<'a, I, R> {
        shared: &'a Shared<I, R>,
        threads: usize,
    }
    impl<I, R> Drop for CheckIn<'_, I, R> {
        fn drop(&mut self) {
            let mut g = match self.shared.slot.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            g.checked_in += 1;
            if g.checked_in == self.threads {
                self.shared.done_cv.notify_all();
            }
        }
    }

    std::thread::scope(|scope| {
        let shared = &shared;
        for w in 0..threads {
            let make_state = &make_state;
            let map = &map;
            scope.spawn(move || {
                shared.spawned.fetch_add(1, Ordering::Relaxed);
                let mut state = make_state(w);
                let mut seen_epoch = 0u64;
                loop {
                    // Wait for a fresh epoch (or shutdown) and copy its job.
                    let job = {
                        let mut g = shared.slot.lock().unwrap();
                        loop {
                            if g.shutdown {
                                return;
                            }
                            if g.epoch != seen_epoch {
                                seen_epoch = g.epoch;
                                break g.job.expect("published epoch carries a job");
                            }
                            g = shared.work_cv.wait(g).unwrap();
                        }
                    };
                    // Check in even if `map` panics below: a missing check-in
                    // would leave the submitter waiting forever, masking the
                    // panic as a deadlock. (A panicked item leaves its result
                    // slot `None`, which the submitter reports.)
                    let checkin = CheckIn { shared, threads };
                    // Drain the claim counter. Disjoint `idx` values make the
                    // result writes race-free.
                    loop {
                        let k = shared.next.fetch_add(1, Ordering::Relaxed);
                        if k >= job.len {
                            break;
                        }
                        // SAFETY: job pointers are valid until every worker
                        // checks in below; `k < len` bounds both reads, and
                        // `order` is a permutation so `idx` is in range and
                        // claimed by exactly one worker.
                        unsafe {
                            let idx = *job.order.add(k);
                            let r = map(&mut state, &*job.items.add(idx));
                            *job.results.add(idx) = Some(r);
                        }
                    }
                    // Check in: the mutex makes this worker's result writes
                    // visible to the submitter observing the count.
                    drop(checkin);
                }
            });
        }

        let guard = Shutdown(shared);
        let pool = WorkerPool { shared, threads };
        let out = body(&pool);
        drop(guard);
        out
    })
}

/// Map `f` over `items` with `threads` workers, processing in the order
/// given by `order` (e.g. longest first) but returning results in the
/// original item order.
///
/// Compatibility wrapper that stands up a pool for a single batch. Pipelines
/// should hold a pool for their whole run via [`with_worker_pool`] instead.
pub fn par_map_indexed<I, R, F>(items: &[I], order: &[usize], threads: usize, f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(&I) -> R + Sync,
{
    assert_eq!(
        items.len(),
        order.len(),
        "order must be a permutation of the items"
    );
    with_worker_pool(
        threads.min(items.len().max(1)),
        |_| (),
        |(), item| f(item),
        |pool| pool.run_batch(items, order),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<u32> = (0..100).collect();
        let order: Vec<usize> = (0..100).rev().collect(); // process backwards
        let out = par_map_indexed(&items, &order, 4, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn single_thread_works() {
        let items = vec![1, 2, 3];
        let order = vec![0, 1, 2];
        assert_eq!(
            par_map_indexed(&items, &order, 1, |&x| x + 1),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = Vec::new();
        let out: Vec<u32> = par_map_indexed(&items, &[], 8, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn mismatched_order_panics() {
        let items = vec![1, 2, 3];
        par_map_indexed(&items, &[0, 1], 2, |&x| x);
    }

    #[test]
    fn pool_reuses_threads_across_batches() {
        let batches: Vec<Vec<u32>> = (0..50).map(|b| (b * 10..b * 10 + 10).collect()).collect();
        with_worker_pool(
            4,
            |_| 0u64, // per-worker state: items served
            |served: &mut u64, &x: &u32| {
                *served += 1;
                x + 1
            },
            |pool| {
                for batch in &batches {
                    let order: Vec<usize> = (0..batch.len()).collect();
                    let out = pool.run_batch(batch, &order);
                    let want: Vec<u32> = batch.iter().map(|x| x + 1).collect();
                    assert_eq!(out, want);
                }
                assert_eq!(pool.threads_spawned(), 4, "threads spawned once per run");
            },
        );
    }

    #[test]
    fn worker_state_is_built_once_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let built = AtomicUsize::new(0);
        with_worker_pool(
            3,
            |_| {
                built.fetch_add(1, Ordering::Relaxed);
            },
            |(), &x: &u32| x,
            |pool| {
                for _ in 0..20 {
                    let items: Vec<u32> = (0..17).collect();
                    let order: Vec<usize> = (0..17).collect();
                    pool.run_batch(&items, &order);
                }
            },
        );
        assert_eq!(built.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn batch_larger_and_smaller_than_pool() {
        with_worker_pool(
            8,
            |_| (),
            |(), &x: &u64| x * x,
            |pool| {
                for n in [1usize, 3, 8, 100] {
                    let items: Vec<u64> = (0..n as u64).collect();
                    let order: Vec<usize> = (0..n).collect();
                    let out = pool.run_batch(&items, &order);
                    assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<u64>>());
                }
            },
        );
    }

    #[test]
    fn body_panic_releases_workers() {
        let caught = std::panic::catch_unwind(|| {
            with_worker_pool(
                2,
                |_| (),
                |(), &x: &u32| x,
                |_pool: &WorkerPool<'_, u32, u32>| panic!("body bail"),
            )
        });
        assert!(caught.is_err()); // and no deadlock joining the scope
    }
}
