//! Typed pipeline errors.
//!
//! The fallible pipeline entry points ([`crate::try_run_three_thread_with_state`],
//! [`crate::try_run_two_thread_with_state`]) report exactly which stage
//! failed. Stage callbacks return [`DynError`] so any error type flows
//! through the pipeline unchanged; the pipeline wraps it with the stage that
//! produced it.

use std::fmt;

/// Boxed error produced by a caller-supplied stage callback.
pub type DynError = Box<dyn std::error::Error + Send + Sync>;

/// Why a pipeline run stopped early.
#[derive(Debug)]
pub enum PipelineError {
    /// The input stage failed; no further batches were processed.
    Read(DynError),
    /// The output stage failed; results already handed to the writer may be
    /// partially emitted.
    Write(DynError),
    /// A worker panicked on one item and no per-item degradation handler
    /// was installed.
    WorkerPanic { item_index: usize, message: String },
    /// The batched pipeline's dispatch stage (e.g. an alignment backend)
    /// failed for a whole batch. Dispatch errors are fatal: unlike a
    /// per-item panic there is no single item to degrade.
    Dispatch(DynError),
    /// Dispatch failed for one item and no per-item degradation handler was
    /// installed (the supervised backend reports quarantined jobs this way).
    DispatchItem { item_index: usize, message: String },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Read(e) => write!(f, "pipeline input failed: {e}"),
            PipelineError::Write(e) => write!(f, "pipeline output failed: {e}"),
            PipelineError::WorkerPanic {
                item_index,
                message,
            } => write!(
                f,
                "worker panicked while processing item {item_index}: {message}"
            ),
            PipelineError::Dispatch(e) => write!(f, "pipeline dispatch failed: {e}"),
            PipelineError::DispatchItem {
                item_index,
                message,
            } => write!(f, "dispatch failed for item {item_index}: {message}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Read(e) | PipelineError::Write(e) | PipelineError::Dispatch(e) => {
                Some(e.as_ref())
            }
            PipelineError::WorkerPanic { .. } | PipelineError::DispatchItem { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_stage() {
        let e = PipelineError::Read("disk gone".into());
        assert!(e.to_string().contains("input failed"));
        let e = PipelineError::WorkerPanic {
            item_index: 4,
            message: "boom".into(),
        };
        assert!(e.to_string().contains("item 4"));
        assert!(e.to_string().contains("boom"));
    }
}
