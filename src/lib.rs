//! Workspace-root package: hosts `examples/` and cross-crate `tests/`.
//! The library surface simply re-exports the [`manymap`] public API.
pub use manymap::*;
